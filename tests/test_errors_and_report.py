"""Tests for the exception hierarchy and Table-I report mechanics."""

import math

import pytest

from repro import errors
from repro.core.report import PAPER_AVERAGES, PAPER_TABLE1, Table, TableRow


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_parse_error_line_prefix(self):
        err = errors.ParseError("bad token", line=42)
        assert "line 42" in str(err)
        assert err.line == 42

    def test_parse_error_no_line(self):
        err = errors.ParseError("bad token")
        assert err.line is None

    def test_equivalence_error_carries_witness(self):
        err = errors.EquivalenceError("differs", {"a": 1})
        assert err.counterexample == {"a": 1}

    def test_hazard_is_timing_error(self):
        assert issubclass(errors.HazardError, errors.TimingError)

    def test_solver_family(self):
        for cls in (errors.InfeasibleError, errors.UnboundedError,
                    errors.SolverLimitError):
            assert issubclass(cls, errors.SolverError)


def sample_row():
    return TableRow(
        name="demo",
        t1_found=10,
        t1_used=8,
        dff_1phi=1000,
        dff_nphi=250,
        dff_t1=260,
        area_1phi=10000,
        area_nphi=4000,
        area_t1=3600,
        depth_1phi=64,
        depth_nphi=16,
        depth_t1=17,
    )


class TestTableRow:
    def test_ratios(self):
        row = sample_row()
        assert row.dff_ratio_1phi == pytest.approx(0.26)
        assert row.dff_ratio_nphi == pytest.approx(1.04)
        assert row.area_ratio_nphi == pytest.approx(0.9)
        assert row.depth_ratio_nphi == pytest.approx(17 / 16)

    def test_zero_baseline_gives_nan(self):
        row = sample_row()
        row.dff_1phi = 0
        assert math.isnan(row.dff_ratio_1phi)


class TestTable:
    def test_averages_skip_nan(self):
        r1, r2 = sample_row(), sample_row()
        r2.dff_1phi = 0  # NaN ratio must be excluded
        table = Table([r1, r2])
        avg = table.averages()
        assert avg["dff_ratio_1phi"] == pytest.approx(r1.dff_ratio_1phi)

    def test_format_layout(self):
        table = Table([sample_row()])
        text = table.format()
        lines = text.splitlines()
        assert lines[0].startswith("benchmark")
        assert any("demo" in l for l in lines)
        assert "1'000" in text  # thousands separator
        assert lines[-1].startswith("Average")

    def test_as_dicts(self):
        table = Table([sample_row()])
        d = table.as_dicts()[0]
        assert d["benchmark"] == "demo"
        assert d["dff"] == (1000, 250, 260)


class TestPaperData:
    def test_published_ratios_consistent(self):
        """The transcribed Table-I rows are internally consistent."""
        for name, row in PAPER_TABLE1.items():
            dff = row["dff"]
            assert abs(dff[2] / dff[0] - row["dff_r"][0]) < 0.012, name
            assert abs(dff[2] / dff[1] - row["dff_r"][1]) < 0.012, name
            area = row["area"]
            assert abs(area[2] / area[1] - row["area_r"][1]) < 0.012, name
            depth = row["depth"]
            assert abs(depth[2] / depth[1] - row["depth_r"][1]) < 0.012, name

    def test_published_averages_match_rows(self):
        avg = sum(r["area_r"][1] for r in PAPER_TABLE1.values()) / 8
        assert abs(avg - PAPER_AVERAGES["area_ratio_nphi"]) < 0.01
        avg = sum(r["depth_r"][1] for r in PAPER_TABLE1.values()) / 8
        assert abs(avg - PAPER_AVERAGES["depth_ratio_nphi"]) < 0.01
