"""Tests for the JJ-area / DFF / depth metric layer."""

import pytest

from repro.circuits import ripple_carry_adder
from repro.core import FlowConfig, run_flow
from repro.metrics import area_jj, count_splitters, measure
from repro.network import Gate, LogicNetwork
from repro.sfq import SFQNetlist, default_library, map_to_sfq


def test_splitter_counting_f_minus_one():
    nl = SFQNetlist()
    a = nl.add_pi()
    g1 = nl.add_gate(Gate.NOT, [(a, "out")])
    g2 = nl.add_gate(Gate.NOT, [(a, "out")])
    g3 = nl.add_gate(Gate.NOT, [(a, "out")])
    nl.add_po((g1, "out"))
    nl.add_po((g2, "out"))
    nl.add_po((g3, "out"))
    # net a has 3 consumers -> 2 splitters; each NOT has 1 consumer (PO)
    assert count_splitters(nl) == 2


def test_po_is_a_consumer():
    nl = SFQNetlist()
    a = nl.add_pi()
    g1 = nl.add_gate(Gate.NOT, [(a, "out")])
    nl.add_po((a, "out"))  # PI also observed directly
    nl.add_po((g1, "out"))
    assert count_splitters(nl) == 1


def test_area_sums_cells():
    lib = default_library()
    nl = SFQNetlist()
    a, b, c = nl.add_pi(), nl.add_pi(), nl.add_pi()
    g = nl.add_gate(Gate.AND, [(a, "out"), (b, "out")])
    t = nl.add_t1((a, "out"), (b, "out"), (c, "out"))
    d = nl.add_dff((g, "out"), stage=2)
    nl.add_po((d, "out"))
    nl.add_po((t, "S"))
    expected = (
        lib.gate_area(Gate.AND, 2)
        + lib.t1.jj_count
        + lib.dff.jj_count
        + 2 * lib.splitter.jj_count  # a and b each feed 2 consumers
    )
    assert area_jj(nl) == expected


def test_const_cells_free():
    nl = SFQNetlist()
    k = nl.add_const(False)
    nl.add_po((k, "out"))
    assert area_jj(nl) == 0


def test_measure_consistency_with_flow():
    net = ripple_carry_adder(8)
    res = run_flow(net, FlowConfig(verify="none"))
    m = res.metrics
    assert m.num_dffs == res.netlist.num_dffs()
    assert m.area_jj == area_jj(res.netlist)
    assert m.num_t1 == len(list(res.netlist.t1_cells()))
    assert m.depth_cycles >= 1
    d = m.as_dict()
    assert d["area_jj"] == m.area_jj


def test_depth_uses_max_stage():
    net = ripple_carry_adder(8)
    res = run_flow(net, FlowConfig(n_phases=4, use_t1=False, verify="none"))
    import math

    assert res.metrics.depth_cycles == math.ceil(
        res.netlist.max_stage() / 4
    )
