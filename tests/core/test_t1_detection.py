"""Tests for T1 detection, gain computation and substitution (§II-A)."""

import pytest

from repro.circuits import ripple_carry_adder
from repro.network import (
    Gate,
    LogicNetwork,
    check_equivalence,
    exhaustive_equivalence,
)
from repro.network.cleanup import strash
from repro.core.t1_detection import (
    detect_and_replace,
    find_candidates,
    node_area,
    select_candidates,
)
from repro.sfq.cell_library import default_library


def full_adder_net():
    """XOR3 + MAJ3 over shared leaves — the canonical T1 target."""
    net = LogicNetwork("fa")
    a, b, c = (net.add_pi(x) for x in "abc")
    net.add_po(net.add_xor(a, b, c), "s")
    net.add_po(net.add_maj3(a, b, c), "co")
    return net


class TestFindCandidates:
    def test_full_adder_found(self):
        net = full_adder_net()
        cands = find_candidates(net)
        assert len(cands) == 1
        cand = cands[0]
        assert set(cand.leaves) == set(net.pis)
        ports = {m.port for _n, m in cand.matches}
        assert ports == {"S", "C"}

    def test_gain_is_mffc_minus_t1(self):
        net = full_adder_net()
        lib = default_library()
        cand = find_candidates(net)[0]
        saved = lib.gate_area(Gate.XOR, 3) + lib.gate_area(Gate.MAJ3, 3)
        assert cand.gain == saved - lib.t1.jj_count

    def test_single_function_not_enough(self):
        # only XOR3: the paper requires 2..5 matched outputs
        net = LogicNetwork()
        a, b, c = (net.add_pi() for _ in range(3))
        net.add_po(net.add_xor(a, b, c))
        assert find_candidates(net) == []

    def test_negative_gain_rejected(self):
        # two tiny functions whose cones are cheaper than a T1 cell
        net = LogicNetwork()
        a, b, c = (net.add_pi() for _ in range(3))
        net.add_po(net.add_or(a, b, c))      # OR3: 18 JJ
        net.add_po(net.add_nor(a, b, c))     # needs decomposition anyway
        # OR3 (18) + NOR3->not available as single cell; use explicit pair
        cands = find_candidates(net)
        for cand in cands:
            assert cand.gain > 0

    def test_decomposed_full_adder_found_via_cuts(self):
        # FA from 2-input gates: cut enumeration must recover XOR3/MAJ3
        net = LogicNetwork()
        a, b, c = (net.add_pi() for _ in range(3))
        ab = net.add_xor(a, b)
        net.add_po(net.add_xor(ab, c), "s")
        t1_ = net.add_and(a, b)
        t2 = net.add_and(ab, c)
        net.add_po(net.add_or(t1_, t2), "co")
        cands = find_candidates(net)
        assert len(cands) >= 1
        best = cands[0]
        assert set(best.leaves) == {a, b, c}
        # the whole 5-gate cone is replaced:
        # 2 XOR2 (22) + 2 AND2 (20) + OR2 (12) - T1 (29) = 25
        lib = default_library()
        assert len(best.cone) == 5
        assert best.gain == 22 + 20 + 12 - lib.t1.jj_count

    def test_inverted_full_adder_found_with_polarity(self):
        # !MAJ3 and XOR3 share the cell (C* + inverter path)
        net = LogicNetwork()
        a, b, c = (net.add_pi() for _ in range(3))
        net.add_po(net.add_xor(a, b, c))
        maj = net.add_maj3(a, b, c)
        net.add_po(net.add_not(maj))
        res = detect_and_replace(net)
        assert res.used == 1
        assert exhaustive_equivalence(net, res.network).equivalent


class TestSelection:
    def test_overlapping_candidates_resolved(self):
        # two FAs sharing the same carry chain node: both applicable,
        # selection must not double-claim the shared cone
        net = ripple_carry_adder(4)
        cands = find_candidates(net)
        selected = select_candidates(cands)
        claimed = set()
        for cand in selected:
            assert not (cand.cone & claimed)
            claimed |= cand.cone

    def test_greedy_prefers_gain(self):
        net = ripple_carry_adder(4)
        cands = find_candidates(net)
        gains = [c.gain for c in cands]
        assert gains == sorted(gains, reverse=True)


class TestDetectAndReplace:
    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_adder_chain_replaced(self, bits):
        net = ripple_carry_adder(bits)
        res = detect_and_replace(net)
        # bits-1 full adders (bit 0 is a half adder)
        assert res.used == bits - 1
        assert res.found == bits - 1
        assert len(res.network.t1_cells()) == bits - 1
        assert check_equivalence(net, res.network).equivalent

    def test_node_count_shrinks(self):
        net = ripple_carry_adder(8)
        res = detect_and_replace(net)
        assert res.network.num_gates() < net.num_gates()

    def test_t1_fanins_are_live_non_cell_nodes(self):
        net = ripple_carry_adder(4)
        res = detect_and_replace(net)
        from repro.network.traversal import live_nodes

        live = live_nodes(res.network)
        for cell in res.network.t1_cells():
            for f in res.network.fanin(cell):
                # a T1 cell is fed by signals, never by another raw cell
                assert res.network.gate(f) is not Gate.T1_CELL
                assert f in live

    def test_idempotent_second_pass(self):
        net = ripple_carry_adder(6)
        first = detect_and_replace(net)
        second = detect_and_replace(first.network)
        assert second.used == 0
        assert exhaustive_equivalence(net, second.network).equivalent

    def test_node_area_helper(self):
        lib = default_library()
        net = LogicNetwork()
        a, b = net.add_pi(), net.add_pi()
        g = net.add_and(a, b)
        buf = net.add_buf(g)
        assert node_area(net, a, lib) == 0
        assert node_area(net, g, lib) == lib.gate_area(Gate.AND, 2)
        assert node_area(net, buf, lib) == 0

    def test_popcount_tree_replaced_and_equivalent(self):
        from repro.circuits import majority_voter

        net = majority_voter(15)
        res = detect_and_replace(strash(net)[0])
        assert res.used >= 4
        assert check_equivalence(net, res.network).equivalent


class TestFindCandidatesDifferential:
    """The kernel candidate search vs the retained seed reference."""

    def snapshot(self, cands):
        return [
            (c.leaves, c.polarity, c.gain, c.matches, sorted(c.cone))
            for c in cands
        ]

    @pytest.mark.parametrize("seed", range(5))
    def test_random_xor_maj_networks(self, seed):
        import random

        from repro.core.t1_detection import find_candidates_reference

        rng = random.Random(seed)
        net = LogicNetwork("rand")
        pis = [net.add_pi(f"x{i}") for i in range(6)]
        pool = list(pis)
        for _ in range(40):
            a, b, c = (rng.choice(pool) for _ in range(3))
            kind = rng.randrange(4)
            if kind == 0:
                node = net.add_xor(a, b, c)
            elif kind == 1:
                node = net.add_maj3(a, b, c)
            elif kind == 2:
                node = net.add_or(a, b, c)
            else:
                node = net.add_and(a, rng.choice(pool))
            pool.append(node)
        for i in range(4):
            net.add_po(rng.choice(pool[len(pis):]), f"y{i}")

        kernel = find_candidates(net)
        reference = find_candidates_reference(net)
        assert self.snapshot(kernel) == self.snapshot(reference)

    def test_adder_matches_reference(self):
        from repro.core.t1_detection import find_candidates_reference

        net = strash(ripple_carry_adder(6))[0]
        kernel = find_candidates(net)
        reference = find_candidates_reference(net)
        assert self.snapshot(kernel) == self.snapshot(reference)

    def test_detection_shares_epoch_cached_cuts(self):
        from repro.network.cuts import cached_cut_database

        net = strash(ripple_carry_adder(4))[0]
        first = find_candidates(net)
        db = cached_cut_database(net)
        # unmutated network: the second search reuses the same database
        assert cached_cut_database(net) is db
        second = find_candidates(net)
        assert self.snapshot(first) == self.snapshot(second)
