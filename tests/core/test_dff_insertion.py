"""Tests for DFF insertion: chains, T1 slots (eq. 4-5), CP cross-check."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TimingError
from repro.network import Gate, LogicNetwork
from repro.sfq import SFQNetlist, check_timing, map_to_sfq
from repro.core.dff_insertion import (
    insert_dffs,
    net_chain_length,
    plan_t1_inputs,
    plan_t1_inputs_cp,
    t1_input_cost,
    t1_slot_cost,
)
from repro.core.phase_assignment import assign_stages_heuristic


class TestSlotCost:
    def test_direct_arrival_free(self):
        assert t1_slot_cost(driver_stage=5, slot=5, t1_stage=8, n=4) == 0

    def test_slot_outside_window_infeasible(self):
        assert t1_slot_cost(5, 3, 8, 4) == float("inf")  # 3 < 8-4
        assert t1_slot_cost(5, 8, 8, 4) == float("inf")  # slot == t1 stage

    def test_slot_before_driver_infeasible(self):
        assert t1_slot_cost(7, 6, 8, 4) == float("inf")

    def test_one_dff_within_n(self):
        assert t1_slot_cost(5, 6, 8, 4) == 1

    def test_chain_cost_ceil(self):
        # driver at 0, slot at 7, n=4: ceil(7/4)=2 DFFs
        assert t1_slot_cost(0, 7, 8, 4) == 2


class TestPlanT1Inputs:
    def test_staggered_fanins_free(self):
        plan = plan_t1_inputs(4, [1, 2, 3], 4)
        assert plan.total_dffs == 0
        assert sorted(plan.slots) == [1, 2, 3]

    def test_collision_costs_one(self):
        # two direct fanins at the same stage: eq. 4's c_T1 = 1
        # (sigma_T1 = 5 honours eq. 3: max(2+3, 2+2, 3+1) = 5)
        plan = plan_t1_inputs(5, [2, 2, 3], 4)
        assert plan.total_dffs == 1

    def test_double_collision_costs_two(self):
        plan = plan_t1_inputs(4, [1, 1, 1], 4)
        assert plan.total_dffs == 2

    def test_far_fanin_chain_flexible(self):
        # fanin far below the window: its chain end lands in a free slot
        plan = plan_t1_inputs(12, [2, 11, 10], 4)
        # chain for stage-2 fanin: ceil((slot-2)/4) with slot in [8,9];
        # slots 11,10 taken by direct arrivals
        assert plan.total_dffs == 2
        assert len(set(plan.slots)) == 3

    def test_eq3_violation_infeasible(self):
        with pytest.raises(TimingError):
            plan_t1_inputs(2, [1, 1, 1], 4)  # sigma >= 1+3 required

    def test_cost_helper_inf(self):
        assert t1_input_cost(2, [1, 1, 1], 4) == float("inf")

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(3, 6),
        gaps=st.tuples(
            st.integers(1, 10), st.integers(1, 10), st.integers(1, 10)
        ),
    )
    def test_matcher_agrees_with_cp_model(self, n, gaps):
        t1_stage = 12
        fanins = [t1_stage - g for g in gaps]
        try:
            plan = plan_t1_inputs(t1_stage, fanins, n)
        except TimingError:
            with pytest.raises(TimingError):
                plan_t1_inputs_cp(t1_stage, fanins, n)
            return
        cp = plan_t1_inputs_cp(t1_stage, fanins, n)
        assert cp.total_dffs == plan.total_dffs
        assert len(set(cp.slots)) == 3

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(3, 6),
        gaps=st.tuples(
            st.integers(1, 10), st.integers(1, 10), st.integers(1, 10)
        ),
    )
    def test_plan_slots_valid(self, n, gaps):
        t1_stage = 12
        fanins = [t1_stage - g for g in gaps]
        try:
            plan = plan_t1_inputs(t1_stage, fanins, n)
        except TimingError:
            return
        assert len(set(plan.slots)) == 3  # eq. 5
        for sd, slot, k in zip(fanins, plan.slots, plan.dffs):
            assert t1_stage - n <= slot <= t1_stage - 1
            assert slot >= sd
            assert k == t1_slot_cost(sd, slot, t1_stage, n)


class TestNetChains:
    def test_net_chain_length(self):
        assert net_chain_length([], 4) == 0
        assert net_chain_length([3], 4) == 0
        assert net_chain_length([5, 9], 4) == 2

    def _diamond(self, n):
        net = LogicNetwork()
        a, b = net.add_pi(), net.add_pi()
        x = net.add_not(a)
        y1 = net.add_not(x)
        y2 = net.add_not(y1)
        out = net.add_and(x, y2)  # x used at two different depths
        net.add_po(out)
        nl, _ = map_to_sfq(net, n_phases=n)
        assign_stages_heuristic(nl)
        return nl

    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_insertion_satisfies_timing(self, n):
        nl = self._diamond(n)
        insert_dffs(nl)
        assert check_timing(nl).ok

    def test_shared_vs_per_edge(self):
        from repro.circuits import ripple_carry_adder

        net = ripple_carry_adder(8)
        counts = {}
        for share in (True, False):
            nl, _ = map_to_sfq(net, n_phases=1)
            assign_stages_heuristic(nl)
            insert_dffs(nl, share_chains=share)
            assert check_timing(nl).ok
            counts[share] = nl.num_dffs()
        assert counts[True] <= counts[False]

    def test_po_balancing_optional(self):
        net = LogicNetwork()
        a, b = net.add_pi(), net.add_pi()
        deep = net.add_not(net.add_not(net.add_not(a)))
        net.add_po(deep, "deep")
        net.add_po(net.add_not(b), "shallow")
        nl, _ = map_to_sfq(net, n_phases=1)
        assign_stages_heuristic(nl)
        insert_dffs(nl, balance_pos=True)
        with_balance = nl.num_dffs()

        nl2, _ = map_to_sfq(net, n_phases=1)
        assign_stages_heuristic(nl2, include_po_balancing=False)
        insert_dffs(nl2, balance_pos=False)
        without = nl2.num_dffs()
        assert with_balance > without

    def test_report_categories(self):
        from repro.circuits import ripple_carry_adder

        net = ripple_carry_adder(6)
        from repro.core.t1_detection import detect_and_replace

        res = detect_and_replace(net)
        nl, _ = map_to_sfq(res.network, n_phases=4)
        assign_stages_heuristic(nl)
        report = insert_dffs(nl)
        assert report.total == nl.num_dffs()
        assert report.path_dffs >= 0
        assert report.t1_stagger_dffs >= 0

    def test_missing_stage_rejected(self):
        nl = SFQNetlist(n_phases=2)
        a = nl.add_pi()
        nl.add_gate(Gate.NOT, [(a, "out")])
        with pytest.raises(TimingError):
            insert_dffs(nl)
