"""Tests for Boolean matching against the T1 output functions."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network import Gate, TruthTable, maj3_tt, or3_tt, xor3_tt
from repro.core.t1_matching import (
    T1_OUTPUTS,
    is_t1_implementable,
    match_t1_output,
    polarities_matching,
    polarity_bits,
)


class TestDirectMatches:
    def test_xor3_matches_s(self):
        m = match_t1_output(xor3_tt(), 0)
        assert m is not None and m.port == "S" and not m.negated

    def test_maj3_matches_c(self):
        m = match_t1_output(maj3_tt(), 0)
        assert m is not None and m.port == "C" and not m.negated

    def test_or3_matches_q(self):
        m = match_t1_output(or3_tt(), 0)
        assert m is not None and m.port == "Q" and not m.negated

    def test_negated_maj_matches_cn(self):
        m = match_t1_output(~maj3_tt(), 0)
        assert m is not None and m.port == "C" and m.negated
        assert m.tap_gate is Gate.T1_CN

    def test_nor3_matches_qn(self):
        m = match_t1_output(~or3_tt(), 0)
        assert m is not None and m.port == "Q" and m.negated

    def test_xnor3_does_not_match_at_polarity0(self):
        # no raw S* port: NOT XOR3 is not reachable without input negation
        assert match_t1_output(~xor3_tt(), 0) is None

    def test_xnor3_matches_under_single_input_negation(self):
        # ~XOR3 == XOR3 with one negated input
        found = polarities_matching(~xor3_tt())
        assert any(
            m.port == "S" and bin(p).count("1") % 2 == 1 for p, m in found
        )

    def test_and3_matches_qn_under_full_negation(self):
        # a & b & c == NOT(OR3(!a, !b, !c))
        and3 = TruthTable.from_function(lambda a, b, c: bool(a and b and c), 3)
        found = polarities_matching(and3)
        assert any(p == 0b111 and m.port == "Q" and m.negated for p, m in found)

    def test_random_function_rejected(self):
        f = TruthTable.from_function(lambda a, b, c: bool(a and not b or (b and c)), 3)
        # f is not symmetric -> not T1 implementable under any polarity
        assert not is_t1_implementable(f)

    def test_wrong_arity_rejected(self):
        assert match_t1_output(TruthTable.var(0, 2), 0) is None


class TestPolarityConsistency:
    @pytest.mark.parametrize("polarity", range(8))
    def test_matched_function_is_port_function_of_negated_inputs(self, polarity):
        base = {"S": xor3_tt(), "C": maj3_tt(), "Q": or3_tt()}
        for port, negated, _tap in T1_OUTPUTS:
            f = base[port].negate_vars(polarity)
            if negated:
                f = ~f
            m = match_t1_output(f, polarity)
            assert m is not None
            assert m.port == port
            # negation flag may differ only when two descriptors collide,
            # which cannot happen (functions are pairwise distinct)
            assert m.negated == negated

    def test_polarity_bits(self):
        assert polarity_bits(0b101) == (True, False, True)


@given(bits=st.integers(0, 255))
def test_only_symmetric_functions_match(bits):
    """Every T1-implementable function must be totally symmetric
    *after* undoing the input polarity."""
    tt = TruthTable(bits, 3)
    for polarity, _m in polarities_matching(tt):
        undone = tt.negate_vars(polarity)
        for perm in itertools.permutations(range(3)):
            assert undone.permute(perm) == undone
