"""Property tests: stage/DFF invariants on random pipelines (eqs. 1, 3, 5).

These check the *structural laws* directly, complementing the functional
fuzz suite:

I1. after insertion, every producer→consumer stage gap lies in [1, n];
I2. per net, the inserted chain length equals max(⌈gap/n⌉ − 1) over the
    pre-insertion consumer gaps (minimality of sharing);
I3. T1 fanins arrive at pairwise distinct stages within the window;
I4. depth in cycles equals ⌈σ_max / n⌉.
"""

import math
import random

import pytest

from repro.core import FlowConfig, run_flow
from repro.sfq.multiphase import depth_cycles, edge_dffs
from repro.sfq.netlist import CellKind
from tests.test_flow_fuzz import random_network


def _flows(seed, n, use_t1):
    net = random_network(seed, num_gates=30)
    return run_flow(
        net, FlowConfig(n_phases=n, use_t1=use_t1, verify="none")
    )


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("n", [1, 2, 4])
def test_i1_gap_bounds(seed, n):
    res = _flows(seed, n, use_t1=(n >= 3))
    nl = res.netlist
    for cell in nl.cells:
        if not cell.clocked:
            continue
        for sig in cell.fanins:
            d = nl.cells[sig[0]]
            gap = cell.stage - d.stage
            assert 1 <= gap <= n, (seed, n, d.index, cell.index, gap)


@pytest.mark.parametrize("seed", range(6))
def test_i3_t1_distinct_arrivals(seed):
    res = _flows(seed, 4, use_t1=True)
    nl = res.netlist
    for cell in nl.t1_cells():
        arrivals = [nl.cells[sig[0]].stage for sig in cell.fanins]
        assert len(set(arrivals)) == 3, (seed, cell.index, arrivals)
        for a in arrivals:
            assert cell.stage - 4 <= a <= cell.stage - 1


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("n", [1, 4])
def test_i4_depth_definition(seed, n):
    res = _flows(seed, n, use_t1=False)
    assert res.depth_cycles == depth_cycles(res.netlist.max_stage(), n)
    assert res.depth_cycles == math.ceil(res.netlist.max_stage() / n)


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("n", [1, 2, 4])
def test_i2_chain_minimality(seed, n):
    """Replay insertion counting: DFFs per ordinary net == shared minimum."""
    from repro.network.cleanup import strash
    from repro.sfq.mapping import map_to_sfq
    from repro.core.dff_insertion import insert_dffs
    from repro.core.phase_assignment import assign_stages_heuristic

    net = random_network(seed, num_gates=25)
    work, _ = strash(net)
    nl, _ = map_to_sfq(work, n_phases=n)
    assign_stages_heuristic(nl)

    # record pre-insertion gaps per ordinary net (excluding T1 consumers
    # and PO balancing, which have separate rules)
    gaps = {}
    for cell in nl.cells:
        if cell.kind is CellKind.T1:
            continue
        for sig in cell.fanins:
            d = nl.cells[sig[0]]
            gaps.setdefault(sig, []).append(cell.stage - d.stage)
    expected = sum(
        max(edge_dffs(g, n) for g in glist) for glist in gaps.values()
    )
    report = insert_dffs(nl, balance_pos=False)
    assert report.path_dffs == expected, (seed, n)


@pytest.mark.parametrize("seed", range(4))
def test_stagger_dffs_bounded_by_two_per_cell(seed):
    """Eq. 4: each T1 needs at most 2 extra staggering DFFs beyond its
    path-balancing chains (collisions involve at most 2 of 3 inputs
    moving)."""
    res = _flows(seed, 4, use_t1=True)
    nl = res.netlist
    t1_count = sum(1 for _ in nl.t1_cells())
    if t1_count == 0:
        return
    # upper bound: balancing chains (<= ceil(gap/n) each) + 2 per cell;
    # loose but must hold
    ins = res.insertion
    assert ins.t1_stagger_dffs <= t1_count * (2 + 3 * (nl.max_stage() // 4 + 1))
