"""Integration tests for the end-to-end flow and reporting."""

import pytest

from repro.circuits import build, ripple_carry_adder
from repro.errors import ReproError
from repro.core import (
    FlowConfig,
    PAPER_TABLE1,
    Table,
    TableRow,
    fmt_thousands,
    run_baselines_and_t1,
    run_flow,
)


class TestFlowConfig:
    def test_t1_needs_three_phases(self):
        with pytest.raises(ReproError):
            FlowConfig(n_phases=2, use_t1=True)

    def test_baseline_allows_any_phase(self):
        FlowConfig(n_phases=1, use_t1=False)  # ok


class TestRunFlow:
    def test_adder_t1_flow_counts(self):
        net = ripple_carry_adder(16)
        res = run_flow(net, FlowConfig(verify="full"))
        assert res.t1_found == 15
        assert res.t1_used == 15
        assert res.verified is True
        assert res.metrics.num_t1 == 15

    def test_depth_relationship(self):
        """depth(1φ) ≈ n · depth(nφ); T1 adds a small constant."""
        net = ripple_carry_adder(16)
        results = run_baselines_and_t1(net, n_phases=4, verify="none")
        d1 = results["1phi"].depth_cycles
        d4 = results["nphi"].depth_cycles
        dt = results["t1"].depth_cycles
        assert d1 == 16
        assert d4 == 4
        assert d4 <= dt <= d4 + 2

    def test_t1_area_beats_baseline_on_adder(self):
        net = ripple_carry_adder(16)
        results = run_baselines_and_t1(net, verify="none")
        assert results["t1"].area_jj < results["nphi"].area_jj
        assert results["nphi"].area_jj < results["1phi"].area_jj

    def test_insertion_report_attached(self):
        net = ripple_carry_adder(8)
        res = run_flow(net, FlowConfig(verify="none"))
        assert res.insertion is not None
        assert res.insertion.total == res.num_dffs

    def test_flow_on_all_ci_benchmarks(self):
        from repro.circuits import names

        for name in names():
            net = build(name, "ci")
            res = run_flow(net, FlowConfig(verify="cec"))
            assert res.metrics.area_jj > 0, name
            assert res.verified is True, name

    def test_streaming_verification_on_t1_benchmark(self):
        net = build("c6288", "ci")
        res = run_flow(net, FlowConfig(verify="full"))
        assert res.verified is True
        assert res.t1_used > 0

    def test_ilp_method_small(self):
        net = ripple_carry_adder(3)
        res = run_flow(
            net, FlowConfig(n_phases=4, use_t1=False, phase_method="ilp",
                            verify="none")
        )
        assert res.metrics.depth_cycles >= 1


class TestReport:
    def test_fmt_thousands(self):
        assert fmt_thousands(32768) == "32'768"
        assert fmt_thousands(238419) == "238'419"
        assert fmt_thousands(5) == "5"

    def test_table_row_ratios(self):
        net = ripple_carry_adder(16)
        results = run_baselines_and_t1(net, verify="none")
        row = TableRow.from_results("adder16", results)
        assert row.area_ratio_nphi == pytest.approx(
            results["t1"].area_jj / results["nphi"].area_jj
        )
        assert row.depth_ratio_1phi == pytest.approx(
            results["t1"].depth_cycles / results["1phi"].depth_cycles
        )

    def test_table_format_contains_all_rows(self):
        net = ripple_carry_adder(8)
        results = run_baselines_and_t1(net, verify="none")
        table = Table([TableRow.from_results("adder8", results)])
        text = table.format()
        assert "adder8" in text
        assert "Average" in text

    def test_paper_reference_data_sane(self):
        assert set(PAPER_TABLE1) == {
            "adder", "c7552", "c6288", "sin", "voter", "square",
            "multiplier", "log2",
        }
        for row in PAPER_TABLE1.values():
            assert row["dff"][2] > 0


class TestPaperShapeCI:
    """Down-scaled shape checks of the paper's headline claims."""

    def test_adder_shape(self):
        net = build("adder", "ci")  # 16-bit
        results = run_baselines_and_t1(net, verify="none")
        row = TableRow.from_results("adder", results)
        # T1 replaces (almost) the whole FA chain
        assert row.t1_used == 15
        # area: T1 < 4phi < 1phi
        assert row.area_t1 < row.area_nphi < row.area_1phi
        # depth: T1 slightly deeper than 4phi, both far below 1phi
        assert row.depth_nphi <= row.depth_t1 <= row.depth_nphi + 2
        assert row.depth_1phi >= 3 * row.depth_nphi

    def test_multiphase_baseline_shape(self):
        """1φ -> 4φ alone gives the big DFF cut (paper average 0.35)."""
        net = build("multiplier", "ci")
        results = run_baselines_and_t1(net, verify="none")
        assert results["nphi"].num_dffs < 0.6 * results["1phi"].num_dffs
