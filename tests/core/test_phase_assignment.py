"""Tests for phase assignment: constraints, heuristic vs exact ILP."""

import pytest

from repro.network import Gate, LogicNetwork
from repro.sfq import map_to_sfq, check_timing
from repro.core.dff_insertion import insert_dffs
from repro.core.phase_assignment import (
    asap_stages,
    assign_stages_heuristic,
    assign_stages_ilp,
    t1_lower_bound,
    _Structure,
)
from repro.metrics import measure


def chain_net(length=5):
    net = LogicNetwork()
    a = net.add_pi()
    cur = a
    for _ in range(length):
        cur = net.add_not(cur)
    net.add_po(cur)
    return net


def t1_net():
    net = LogicNetwork()
    a, b, c = (net.add_pi() for _ in range(3))
    cell = net.add_t1_cell(a, b, c)
    net.add_po(net.add_t1_tap(cell, Gate.T1_S))
    net.add_po(net.add_t1_tap(cell, Gate.T1_C))
    return net


class TestT1LowerBound:
    def test_eq3_sorted(self):
        # fanins at 0,0,0: need sigma >= 3
        assert t1_lower_bound([0, 0, 0]) == 3
        # staggered fanins: 2,1,0 -> max(0+3, 1+2, 2+1) = 3
        assert t1_lower_bound([2, 1, 0]) == 3
        # late third input dominates
        assert t1_lower_bound([0, 0, 9]) == 10


class TestAsap:
    def test_levels_like(self):
        net = chain_net(4)
        nl, _ = map_to_sfq(net, n_phases=4)
        st = _Structure(nl)
        stages = asap_stages(st)
        clocked = [c for c in nl.cells if c.clocked]
        got = sorted(stages[c.index] for c in clocked)
        assert got == [1, 2, 3, 4]

    def test_t1_gets_eq3_offset(self):
        nl, _ = map_to_sfq(t1_net(), n_phases=4)
        st = _Structure(nl)
        stages = asap_stages(st)
        t1 = next(c for c in nl.t1_cells())
        assert stages[t1.index] == 3


class TestHeuristic:
    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_constraints_hold_after_assignment(self, n):
        from repro.circuits import ripple_carry_adder

        net = ripple_carry_adder(8)
        nl, _ = map_to_sfq(net, n_phases=n)
        assign_stages_heuristic(nl)
        insert_dffs(nl)
        assert check_timing(nl).ok

    def test_heuristic_beats_or_matches_asap(self):
        from repro.circuits import c7552_like

        net = c7552_like(8)
        from repro.network.cleanup import strash

        net, _ = strash(net)
        nl, _ = map_to_sfq(net, n_phases=4)
        st = _Structure(nl)
        asap = asap_stages(st)
        # cost with raw ASAP
        nl_asap, _ = map_to_sfq(net, n_phases=4)
        for cell in nl_asap.cells:
            if cell.clocked:
                cell.stage = asap[cell.index]
        insert_dffs(nl_asap)
        asap_dffs = nl_asap.num_dffs()

        assign_stages_heuristic(nl)
        insert_dffs(nl)
        assert nl.num_dffs() <= asap_dffs

    def test_free_pi_phases_do_not_exceed_epoch0(self):
        nl, _ = map_to_sfq(t1_net(), n_phases=4)
        assign_stages_heuristic(nl, free_pi_phases=True)
        for pi in nl.pis:
            assert 0 <= nl.cells[pi].stage <= 3

    def test_pinned_pi_phases(self):
        nl, _ = map_to_sfq(t1_net(), n_phases=4)
        assign_stages_heuristic(nl, free_pi_phases=False)
        for pi in nl.pis:
            assert nl.cells[pi].stage == 0


class TestIlpVsHeuristic:
    def _edge_dff_objective(self, nl):
        """The paper's per-edge proxy objective."""
        from repro.sfq.multiphase import edge_dffs

        total = 0
        for cell in nl.cells:
            if not cell.clocked:
                continue
            for sig in cell.fanins:
                d = nl.cells[sig[0]]
                total += edge_dffs(cell.stage - d.stage, nl.n_phases)
        return total

    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_ilp_feasible_and_not_worse(self, n):
        net = chain_net(4)
        nl_h, _ = map_to_sfq(net, n_phases=n)
        assign_stages_heuristic(nl_h, free_pi_phases=False)
        nl_i, _ = map_to_sfq(net, n_phases=n)
        assign_stages_ilp(nl_i)
        assert self._edge_dff_objective(nl_i) <= self._edge_dff_objective(nl_h)
        insert_dffs(nl_i)
        assert check_timing(nl_i).ok

    def test_ilp_reconvergent_paths(self):
        # unbalanced reconvergence: ILP must place the short path late
        # (or count its DFFs) — check optimal proxy objective
        net = LogicNetwork()
        a, b = net.add_pi(), net.add_pi()
        long = net.add_not(a)
        long = net.add_not(long)
        long = net.add_not(long)
        out = net.add_and(long, b)
        net.add_po(out)
        nl, _ = map_to_sfq(net, n_phases=2)
        assign_stages_ilp(nl)
        insert_dffs(nl)
        assert check_timing(nl).ok
        # with n=2 the 4-deep long path forces the AND to stage 4; the
        # short b edge (gap 4) costs exactly 1 DFF
        assert nl.num_dffs() <= 1

    def test_ilp_with_t1_offsets(self):
        nl, _ = map_to_sfq(t1_net(), n_phases=4)
        assign_stages_ilp(nl)
        t1 = next(c for c in nl.t1_cells())
        assert t1.stage >= 3  # eq. 3 with PIs at 0
        insert_dffs(nl)
        assert check_timing(nl).ok


class TestEndToEndCost:
    def test_multiphase_reduces_dffs(self):
        """The ASP-DAC'24 headline the paper builds on: n=4 cuts DFFs ~3x."""
        from repro.circuits import ripple_carry_adder

        net = ripple_carry_adder(16)
        results = {}
        for n in (1, 4):
            nl, _ = map_to_sfq(net, n_phases=n)
            assign_stages_heuristic(nl)
            insert_dffs(nl)
            results[n] = measure(nl)
        assert results[4].num_dffs < results[1].num_dffs / 2
        assert results[4].depth_cycles * 3 < results[1].depth_cycles
