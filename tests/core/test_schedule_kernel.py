"""Differential tests for the incremental schedule kernel (StageSchedule).

The kernel's contract: delta-evaluated move pricing and the maintained
running total must equal a from-scratch recomputation after *any* move
sequence, the live PO boundary must never go stale, and the kernel-based
heuristic must reproduce the seed scan-and-rebuild sweeps bit for bit
from ASAP starts (pinned against the retained reference implementation).
"""

import random

import pytest

from repro.core.dff_insertion import insert_dffs
from repro.core.phase_assignment import (
    _net_cost,
    assign_stages_heuristic,
    assign_stages_ilp,
    assign_stages_rescan_reference,
    assign_stages,
)
from repro.core.schedule import StageSchedule
from repro.network.gates import Gate
from repro.sfq.multiphase import edge_dffs
from repro.sfq.netlist import OUT, SFQNetlist


def random_netlist(seed, n_phases, n_pi=4, n_gates=12, n_t1=2, n_po=3):
    """A random mapped netlist (gates + optional T1 blocks + POs)."""
    rng = random.Random(seed)
    nl = SFQNetlist(f"rand{seed}", n_phases=n_phases)
    sigs = [(nl.add_pi(), OUT) for _ in range(n_pi)]
    for _ in range(n_gates):
        fins = [rng.choice(sigs) for _ in range(rng.choice([1, 2, 2, 3]))]
        sigs.append((nl.add_gate(Gate.AND, fins), OUT))
    if n_phases >= 3:
        for _ in range(n_t1):
            a, b, c = (rng.choice(sigs) for _ in range(3))
            t = nl.add_t1(a, b, c)
            for port in ("S", "C", "Q"):
                if rng.random() < 0.7:
                    sigs.append((t, port))
    for _ in range(n_po):
        nl.add_po(rng.choice(sigs))
    return nl


def mapped_registry_netlist(name):
    """Run the standard pipeline up to (excluding) phase assignment."""
    from repro.circuits import build
    from repro.pipeline import Pipeline
    from repro.pipeline.context import FlowContext

    pipe = Pipeline.standard(n_phases=4, use_t1=True, verify="none")
    ctx = FlowContext(source=build(name, "ci"), name=name, verify="none")
    for p in pipe.passes:
        if p.name == "phase_assign":
            break
        ctx = p.run(ctx) or ctx
    return ctx.netlist


class TestDeltaEquivalence:
    """Delta evaluation == from-scratch recomputation, always."""

    @pytest.mark.parametrize("n_phases", [1, 2, 3, 4])
    def test_random_move_sequences(self, n_phases):
        nl = random_netlist(7 + n_phases, n_phases)
        k = StageSchedule(nl)
        st = nl.structure()
        movable = [i for i in range(len(nl.cells)) if st.clocked[i]]
        rng = random.Random(99)
        for _ in range(300):
            x = rng.choice(movable)
            s = max(1, k.stages[x] + rng.randint(-3, 3))
            predicted = k.cost_if_moved(x, s)
            k.apply_move(x, s)
            assert k.total() == predicted
            assert k.total() == k.recompute_total()
        k.check_invariants()

    def test_registry_circuit_move_sequence(self):
        nl = mapped_registry_netlist("c6288")
        k = StageSchedule(nl)
        st = nl.structure()
        movable = [i for i in range(len(nl.cells)) if st.clocked[i]]
        rng = random.Random(3)
        for i in range(400):
            x = rng.choice(movable)
            s = max(1, k.stages[x] + rng.randint(-2, 4))
            predicted = k.cost_if_moved(x, s)
            k.apply_move(x, s)
            assert k.total() == predicted
        k.check_invariants()

    def test_peek_does_not_mutate(self):
        nl = random_netlist(1, 4)
        k = StageSchedule(nl)
        before = (list(k.stages), k.state(), k.boundary())
        st = nl.structure()
        for x in range(len(nl.cells)):
            if st.clocked[x]:
                k.cost_if_moved(x, k.stages[x] + 2)
        assert (list(k.stages), k.state(), k.boundary()) == before

    def test_asap_start_total_matches_recompute(self):
        for name in ("adder", "voter", "multiplier"):
            nl = mapped_registry_netlist(name)
            k = StageSchedule(nl)
            assert k.total() == k.recompute_total()
            k.check_invariants()


class TestLiveBoundary:
    """The PO boundary is maintained across moves, never per sweep."""

    def chain_with_dangler(self):
        # p -> g1 -> g2 -> g3 -> g4 (PO), plus h(g2) driving only a PO
        nl = SFQNetlist("bnd", n_phases=2)
        p = (nl.add_pi(), OUT)
        cur = p
        mids = []
        for _ in range(4):
            cur = (nl.add_gate(Gate.AND, [cur]), OUT)
            mids.append(cur)
        nl.add_po(cur)
        h = (nl.add_gate(Gate.AND, [mids[1]]), OUT)
        nl.add_po(h)
        return nl, cur[0], h[0]

    def test_boundary_tracks_max_stage(self):
        nl, g4, h = self.chain_with_dangler()
        k = StageSchedule(nl)
        assert k.boundary() == 5  # deepest cell g4 at stage 4
        k.apply_move(g4, 6)
        assert k.boundary() == 7
        k.check_invariants()
        k.apply_move(g4, 4)
        assert k.boundary() == 5
        k.check_invariants()

    def test_stale_boundary_mispriced_move(self):
        """Regression: the seed priced PO balancing against a boundary
        snapshotted at sweep start.  After a mid-sweep move deepens the
        schedule (boundary 5 -> 7), the snapshot still prices the
        dangler's PO chain at zero DFFs, while the true cost against the
        live boundary is one chain DFF — the kernel's delta and running
        total both account for it."""
        nl, g4, h = self.chain_with_dangler()
        k = StageSchedule(nl)
        stale_boundary = k.boundary()
        assert stale_boundary == 5
        assert k.stages[h] == 3  # ASAP: fed by g2 at stage 2
        before = k.total()
        # deepening g4 to 6 costs: +1 on the g3->g4 chain, +1 on h's PO
        # chain (live boundary 7) — the stale snapshot sees only the first
        assert k.cost_if_moved(g4, 6) - before == 2.0
        k.apply_move(g4, 6)
        assert k.boundary() == 7
        assert k.total() == k.recompute_total() == before + 2.0
        # the seed's pricing of h's PO net with the stale snapshot calls
        # the dangler's position free (boundary gap 2, n=2 -> 0 DFFs) ...
        assert _net_cost(k.stages[h], [], 2, stale_boundary) == 0.0
        # ... but against the live boundary it costs one chain DFF
        assert _net_cost(k.stages[h], [], 2, k.boundary()) == 1.0

    def test_heuristic_final_boundary_consistent(self):
        nl = mapped_registry_netlist("square")
        assign_stages_heuristic(nl)
        stages = [c.stage for c in nl.cells if c.clocked]
        k = StageSchedule(nl, stages=[c.stage for c in nl.cells])
        assert k.boundary() == max(stages) + 1


class TestHeuristicEquivalence:
    """Kernel-based sweeps == the seed scan-and-rebuild reference."""

    @pytest.mark.parametrize("name", ["adder", "c6288", "voter", "square"])
    def test_registry_stage_vectors_identical(self, name):
        nl_kernel = mapped_registry_netlist(name)
        nl_ref = mapped_registry_netlist(name)
        assign_stages_heuristic(nl_kernel)
        assign_stages_rescan_reference(nl_ref)
        got = [c.stage for c in nl_kernel.cells]
        want = [c.stage for c in nl_ref.cells]
        assert got == want

    @pytest.mark.parametrize("n_phases", [1, 2, 3, 4])
    def test_random_netlists_identical(self, n_phases):
        for seed in range(12):
            nl_kernel = random_netlist(seed, n_phases)
            nl_ref = random_netlist(seed, n_phases)
            assign_stages_heuristic(nl_kernel, sweeps=5)
            assign_stages_rescan_reference(nl_ref, sweeps=5)
            assert [c.stage for c in nl_kernel.cells] == (
                [c.stage for c in nl_ref.cells]
            ), f"divergence at seed {seed}"

    def test_reports_agree_on_applied_moves(self):
        nl_kernel = mapped_registry_netlist("c7552")
        nl_ref = mapped_registry_netlist("c7552")
        rk = assign_stages_heuristic(nl_kernel)
        rr = assign_stages_rescan_reference(nl_ref)
        assert rk.moves_applied == rr.moves_applied
        assert rk.sweeps_run == rr.sweeps_run
        assert rk.moves_evaluated > 0


class TestHeuristicQuality:
    """Final cost <= ASAP cost; exact ILP stays the proxy lower bound."""

    @staticmethod
    def _proxy_objective(nl):
        total = 0
        for cell in nl.cells:
            if not cell.clocked:
                continue
            for sig in cell.fanins:
                total += edge_dffs(
                    cell.stage - nl.cells[sig[0]].stage, nl.n_phases
                )
        return total

    @pytest.mark.parametrize("n_phases", [1, 2, 3, 4])
    def test_heuristic_not_worse_than_asap(self, n_phases):
        for seed in range(8):
            nl = random_netlist(100 + seed, n_phases)
            asap_cost = StageSchedule(nl).total()
            assign_stages_heuristic(nl)
            final = StageSchedule(
                nl, stages=[c.stage for c in nl.cells]
            ).total()
            assert final <= asap_cost

    @pytest.mark.parametrize("n_phases", [1, 2, 3, 4])
    def test_ilp_proxy_bounds_heuristic(self, n_phases):
        for seed in range(6):
            t1 = 1 if (n_phases >= 3 and seed % 2 == 0) else 0
            nl_h = random_netlist(
                seed, n_phases, n_pi=3, n_gates=6, n_t1=t1, n_po=2
            )
            nl_i = random_netlist(
                seed, n_phases, n_pi=3, n_gates=6, n_t1=t1, n_po=2
            )
            assign_stages_heuristic(nl_h, free_pi_phases=False)
            assign_stages_ilp(nl_i)
            assert self._proxy_objective(nl_i) <= self._proxy_objective(nl_h)

    @pytest.mark.parametrize("n_phases", [1, 2, 3, 4])
    def test_heuristic_matches_ilp_on_chains(self, n_phases):
        def chain(n):
            nl = SFQNetlist("chain", n_phases=n)
            cur = (nl.add_pi(), OUT)
            for _ in range(5):
                cur = (nl.add_gate(Gate.AND, [cur]), OUT)
            nl.add_po(cur)
            return nl

        nl_h, nl_i = chain(n_phases), chain(n_phases)
        assign_stages_heuristic(nl_h, free_pi_phases=False)
        assign_stages_ilp(nl_i)
        assert insert_dffs(nl_h).total == insert_dffs(nl_i).total


class TestAutoMethod:
    def test_auto_small_uses_ilp(self):
        a = random_netlist(5, 2, n_pi=3, n_gates=6, n_t1=0, n_po=2)
        b = random_netlist(5, 2, n_pi=3, n_gates=6, n_t1=0, n_po=2)
        assign_stages(a, method="auto")
        assign_stages_ilp(b)
        assert [c.stage for c in a.cells] == [c.stage for c in b.cells]

    def test_auto_large_uses_heuristic(self):
        a = mapped_registry_netlist("sin")
        b = mapped_registry_netlist("sin")
        assign_stages(a, method="auto", sweeps=4, free_pi_phases=True)
        assign_stages_heuristic(b, sweeps=4, free_pi_phases=True)
        assert [c.stage for c in a.cells] == [c.stage for c in b.cells]

    def test_unknown_method_raises(self):
        from repro.errors import SolverError

        nl = random_netlist(1, 2)
        with pytest.raises(SolverError):
            assign_stages(nl, method="simulated-annealing")


class TestT1CostCacheScoping:
    def test_kernel_memo_is_per_instance(self):
        nl = random_netlist(11, 4)
        k1 = StageSchedule(nl)
        assert k1._t1_memo  # populated during construction
        k2 = StageSchedule(nl)
        assert k1._t1_memo is not k2._t1_memo

    def test_module_cache_is_bounded_and_clearable(self):
        from repro.core import phase_assignment as pa

        assert (
            pa._t1_cost_cached.cache_info().maxsize == pa.T1_COST_CACHE_SIZE
        )
        pa.t1_stagger_cost(5, [1, 2, 3], 4)
        assert pa._t1_cost_cached.cache_info().currsize > 0
        pa.clear_t1_cost_cache()
        assert pa._t1_cost_cached.cache_info().currsize == 0
