"""FlowService + HTTP daemon lifecycle.

Covers the serving acceptance contract end to end: start -> submit ->
poll -> result bit-identical to in-process ``Pipeline.standard()``;
duplicate submission served from the content-addressed cache (and
``/metrics`` reporting the hit); injected worker crash respawning the
slot and failing only that job; SIGTERM draining in-flight jobs.
"""

import os
import signal
import urllib.error
import urllib.request

import pytest

from repro.circuits import build
from repro.errors import ServiceError
from repro.service import (
    FlowDaemon,
    FlowService,
    ServiceClient,
    build_pipeline,
    normalize_config,
    registry_circuit,
)

FAST_CONFIG = {"verify": "none"}


def make_service(**kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("queue_size", 8)
    kwargs.setdefault("job_timeout_s", 60.0)
    service = FlowService(**kwargs)
    service.start()
    return service


class TestFlowServiceCore:
    """The transport-free core, driven directly."""

    @pytest.fixture
    def service(self):
        service = make_service()
        yield service
        service.stop(drain_timeout=10.0)

    def test_submit_poll_result_bit_identical(self, service):
        status = service.submit(
            {"circuit": registry_circuit("adder", "ci"),
             "config": FAST_CONFIG}
        )
        assert status["state"] in ("queued", "running", "done")
        job = service.wait(status["job_id"], timeout=60)
        assert job.state == "done"
        report = service.job_result(job.id)

        ctx = build_pipeline(normalize_config(FAST_CONFIG)).run(
            build("adder", "ci")
        )
        assert report["metrics"]["dffs"] == ctx.metrics.num_dffs
        assert report["metrics"]["area_jj"] == ctx.metrics.area_jj
        assert report["metrics"]["depth_cycles"] == ctx.metrics.depth_cycles
        assert report["metrics"]["splitters"] == ctx.metrics.num_splitters
        assert report["t1"] == {"found": ctx.t1_found, "used": ctx.t1_used}

    def test_duplicate_submission_is_cache_hit(self, service):
        payload = {
            "circuit": registry_circuit("adder", "ci"),
            "config": FAST_CONFIG,
        }
        first = service.submit(payload)
        service.wait(first["job_id"], timeout=60)
        r1 = service.job_result(first["job_id"])
        assert r1["cached"] is False

        second = service.submit(payload)
        # cache hits complete synchronously: never queued, never run
        assert second["state"] == "done"
        assert second["cached"] is True
        r2 = service.job_result(second["job_id"])
        assert r2["cached"] is True
        # identical flow content, straight from the content address
        for key in ("benchmark", "config", "metrics", "t1", "verified"):
            assert r2[key] == r1[key]
        stats = service.cache.stats()
        assert stats["hits"] == 1
        assert service.metrics()["jobs"]["served_from_cache"] == 1

    def test_cache_is_content_addressed_not_text_addressed(self, service):
        from repro.circuits import ripple_carry_adder
        from repro.io import dumps_blif

        text = dumps_blif(ripple_carry_adder(4))
        first = service.submit(
            {"circuit": {"kind": "blif", "text": text},
             "config": FAST_CONFIG}
        )
        service.wait(first["job_id"], timeout=60)
        # same structure, different bytes: a comment changes the text but
        # not the parsed network, so the content address is unchanged
        commented = "# resubmitted\n" + text
        second = service.submit(
            {"circuit": {"kind": "blif", "text": commented},
             "config": FAST_CONFIG}
        )
        assert second["cached"] is True
        assert service.cache.stats()["hits"] == 1

    def test_failed_job_result_raises(self, service):
        status = service.submit(
            {"circuit": registry_circuit("adder", "ci"),
             "config": FAST_CONFIG,
             "debug": {"crash": True}}
        )
        service.wait(status["job_id"], timeout=60)
        with pytest.raises(ServiceError) as exc_info:
            service.job_result(status["job_id"])
        assert exc_info.value.status == 500
        assert "quarantined" in str(exc_info.value)
        assert "worker crashed" in str(exc_info.value)

    def test_crash_respawns_and_spares_other_jobs(self, service):
        # a persistently-crashing job burns its 3 attempts, lands in
        # quarantine and shows up in /metrics; other jobs are unaffected
        crash = service.submit(
            {"circuit": registry_circuit("adder", "ci"),
             "config": FAST_CONFIG,
             "debug": {"crash": True}}
        )
        follow = service.submit(
            {"circuit": registry_circuit("adder", "ci"),
             "config": FAST_CONFIG}
        )
        assert service.wait(crash["job_id"], timeout=60).state == "quarantined"
        assert service.wait(follow["job_id"], timeout=60).state == "done"
        metrics = service.metrics()
        assert metrics["jobs"]["crashes"] == 3
        assert metrics["jobs"]["retries"] == 2
        assert metrics["jobs"]["quarantined"] == 1
        assert metrics["workers"]["respawns"] == 3
        assert metrics["workers"]["alive"] == 1
        assert [q["job_id"] for q in metrics["quarantine"]] == [crash["job_id"]]
        assert metrics["quarantine"][0]["attempts"] == 3

    def test_debug_jobs_bypass_cache(self, service):
        payload = {
            "circuit": registry_circuit("adder", "ci"),
            "config": FAST_CONFIG,
            "debug": {"sleep_s": 0.01},
        }
        first = service.submit(payload)
        service.wait(first["job_id"], timeout=60)
        second = service.submit(payload)
        assert second["cached"] is False
        service.wait(second["job_id"], timeout=60)
        assert service.cache.stats()["hits"] == 0

    def test_validation_errors(self, service):
        with pytest.raises(ServiceError, match="JSON object"):
            service.submit([1])
        with pytest.raises(ServiceError, match="needs a 'circuit'"):
            service.submit({"config": {}})
        with pytest.raises(ServiceError, match="unknown job payload keys"):
            service.submit(
                {"circuit": registry_circuit("adder", "ci"), "prio": 9}
            )
        with pytest.raises(ServiceError, match="unknown config key"):
            service.submit(
                {"circuit": registry_circuit("adder", "ci"),
                 "config": {"bogus": 1}}
            )
        with pytest.raises(ServiceError, match="invalid pipeline config"):
            service.submit(
                {"circuit": registry_circuit("adder", "ci"),
                 "config": {"n_phases": 2, "use_t1": True}}
            )
        with pytest.raises(ServiceError, match="timeout_s"):
            service.submit(
                {"circuit": registry_circuit("adder", "ci"),
                 "timeout_s": -1}
            )
        with pytest.raises(ServiceError, match="unknown job"):
            service.job_status("nope")

    def test_stage_latency_aggregation(self, service):
        status = service.submit(
            {"circuit": registry_circuit("adder", "ci"),
             "config": FAST_CONFIG}
        )
        service.wait(status["job_id"], timeout=60)
        latency = service.metrics()["stage_latency_s"]
        assert "decompose" in latency
        assert latency["decompose"]["count"] == 1
        assert latency["decompose"]["mean_s"] >= 0.0


class TestHttpLifecycle:
    """The full daemon over real HTTP on an ephemeral port."""

    @pytest.fixture(scope="class")
    def daemon(self):
        daemon = FlowDaemon(
            port=0, workers=1, queue_size=8, job_timeout_s=60.0
        )
        daemon.start()
        yield daemon
        daemon.stop()

    @pytest.fixture(scope="class")
    def client(self, daemon):
        client = ServiceClient(daemon.url, timeout=30.0)
        client.wait_ready(30.0)
        return client

    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["workers_alive"] == 1

    def test_submit_poll_result_over_http(self, client):
        status = client.submit(
            registry_circuit("c6288", "ci"), config=FAST_CONFIG
        )
        assert set(status) >= {"job_id", "state", "cached"}
        report = client.wait(status["job_id"], timeout=60)
        ctx = build_pipeline(normalize_config(FAST_CONFIG)).run(
            build("c6288", "ci")
        )
        assert report["metrics"]["dffs"] == ctx.metrics.num_dffs
        assert report["metrics"]["area_jj"] == ctx.metrics.area_jj
        assert report["t1"] == {"found": ctx.t1_found, "used": ctx.t1_used}

        # duplicate over the wire: flagged cached, identical content
        again = client.submit_and_wait(
            registry_circuit("c6288", "ci"), config=FAST_CONFIG
        )
        assert again["cached"] is True
        assert again["metrics"] == report["metrics"]
        assert client.metrics()["cache"]["hits"] >= 1

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as exc_info:
            client.status("doesnotexist")
        assert exc_info.value.status == 404

    def test_unfinished_result_is_409(self, client):
        status = client.submit(
            registry_circuit("adder", "ci"),
            config=FAST_CONFIG,
            debug={"sleep_s": 1.0},
        )
        with pytest.raises(ServiceError) as exc_info:
            client.result(status["job_id"])
        assert exc_info.value.status == 409
        client.wait(status["job_id"], timeout=60)

    def test_unknown_endpoint_is_404(self, client):
        with pytest.raises(ServiceError) as exc_info:
            client._request("GET", "/bogus")
        assert exc_info.value.status == 404

    def test_malformed_body_is_400(self, client, daemon):
        req = urllib.request.Request(
            daemon.url + "/jobs", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(req, timeout=10)
        assert exc_info.value.code == 400


class TestBackpressureHttp:
    def test_full_queue_is_429(self):
        daemon = FlowDaemon(
            port=0, workers=1, queue_size=1, job_timeout_s=60.0
        )
        daemon.start()
        try:
            # retries=0: observe the raw 429 instead of the client's
            # backoff-and-retry masking it (that path has its own tests)
            client = ServiceClient(daemon.url, retries=0)
            client.wait_ready(30.0)
            saw_429 = False
            accepted = []
            for _ in range(6):
                try:
                    accepted.append(
                        client.submit(
                            registry_circuit("adder", "ci"),
                            config=FAST_CONFIG,
                            debug={"sleep_s": 0.5},
                        )
                    )
                except ServiceError as exc:
                    assert exc.status == 429
                    saw_429 = True
                    break
            assert saw_429
            assert client.metrics()["jobs"]["rejected"] >= 1
            for status in accepted:
                client.wait(status["job_id"], timeout=60)
        finally:
            daemon.stop()


class TestSigtermDrain:
    def test_sigterm_drains_in_flight_jobs(self):
        """SIGTERM: stop accepting, finish accepted work, exit cleanly."""
        daemon = FlowDaemon(
            port=0, workers=1, queue_size=8, job_timeout_s=60.0,
            drain_timeout_s=30.0,
        )
        daemon.start()
        old_handlers = daemon.install_signal_handlers()
        stopped = {}
        try:
            client = ServiceClient(daemon.url)
            client.wait_ready(30.0)
            inflight = client.submit(
                registry_circuit("adder", "ci"),
                config=FAST_CONFIG,
                debug={"sleep_s": 0.8},
            )
            os.kill(os.getpid(), signal.SIGTERM)
            assert daemon.wait_for_stop(timeout=10.0)

            # run the daemon's own stop path (what serve_forever does)
            drained = daemon.stop()
            stopped["done"] = True
            assert drained is True
            # the in-flight job finished during the drain
            job = daemon.service._get_job(inflight["job_id"])
            assert job.state == "done"
            # and the service refuses new work
            with pytest.raises(ServiceError):
                daemon.service.submit(
                    {"circuit": registry_circuit("adder", "ci")}
                )
        finally:
            for sig, handler in old_handlers.items():
                signal.signal(sig, handler)
            if not stopped:
                daemon.stop()

    def test_drain_rejects_submissions_with_503(self):
        daemon = FlowDaemon(port=0, workers=1, queue_size=8)
        daemon.start()
        try:
            client = ServiceClient(daemon.url)
            client.wait_ready(30.0)
            daemon.service.begin_drain()
            health = daemon.service.healthz()
            assert health["status"] == "draining"
            with pytest.raises(ServiceError) as exc_info:
                client.submit(
                    registry_circuit("adder", "ci"), config=FAST_CONFIG
                )
            assert exc_info.value.status == 503
        finally:
            daemon.stop()
