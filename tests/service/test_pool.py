"""WorkerPool: warm workers, timeouts, crash respawn, backpressure, drain."""

import time

import pytest

from repro.circuits import build, ripple_carry_adder
from repro.service.protocol import (
    DONE,
    FAILED,
    QUARANTINED,
    build_pipeline,
    flow_report,
    normalize_config,
)
from repro.service.queue import (
    DrainingError,
    Job,
    QueueFullError,
    WorkerPool,
)

FAST = normalize_config({"verify": "none"})


def make_job(width=4, config=FAST, **kwargs):
    return Job(net=ripple_carry_adder(width), config=dict(config), **kwargs)


@pytest.fixture
def pool():
    p = WorkerPool(workers=1, queue_size=4, job_timeout_s=60.0)
    p.start()
    yield p
    p.shutdown()


class TestExecution:
    def test_job_report_matches_in_process(self, pool):
        job = Job(net=build("adder", "ci"), config=dict(FAST))
        pool.submit(job)
        assert job.done.wait(60)
        assert job.state == DONE
        ctx = build_pipeline(FAST).run(build("adder", "ci"))
        expected = flow_report(ctx, config=FAST)
        # timing fields vary per run; everything semantic is bit-identical
        for key in ("schema", "benchmark", "config", "metrics", "t1",
                    "verified", "cached"):
            assert job.report[key] == expected[key]

    def test_worker_stays_warm_across_jobs(self, pool):
        first = make_job()
        pool.submit(first)
        assert first.done.wait(60)
        stats0 = pool.stats()
        second = make_job()
        pool.submit(second)
        assert second.done.wait(60)
        stats1 = pool.stats()
        assert stats1["respawns"] == stats0["respawns"] == 0
        assert stats1["completed"] == 2

    def test_flow_error_fails_job_not_worker(self, pool):
        # an in-worker Python exception must be reported, with no respawn
        # (the pool does not pre-validate configs; FlowService does)
        bad = dict(FAST)
        bad["n_phases"] = 2  # use_t1 needs >= 3: raises inside the worker
        job = make_job(config=bad)
        pool.submit(job)
        assert job.done.wait(60)
        assert job.state == FAILED
        assert "flow failed" in job.error
        ok = make_job()
        pool.submit(ok)
        assert ok.done.wait(60)
        assert ok.state == DONE
        assert pool.stats()["respawns"] == 0


class TestCrashRecovery:
    def test_crash_quarantines_after_retries_and_respawns(self, pool):
        # a debug-crash job crashes its worker on every attempt: after
        # job_max_attempts (default 3) tries it is quarantined, each
        # crash respawns the worker, and other jobs are unaffected
        crash = make_job(debug={"crash": True})
        follow = make_job()
        pool.submit(crash)
        pool.submit(follow)
        assert crash.done.wait(60)
        assert follow.done.wait(60)
        assert crash.state == QUARANTINED
        assert "worker crashed" in crash.error
        assert "exit code 3" in crash.error
        assert "all 3 attempts" in crash.error
        assert crash.attempts == 3
        assert follow.state == DONE
        stats = pool.stats()
        assert stats["crashes"] == 3
        assert stats["respawns"] == 3
        assert stats["retries"] == 2
        assert stats["quarantined"] == 1
        assert stats["workers_alive"] == 1

    def test_single_attempt_pool_fails_retryable(self):
        # job_max_attempts=1: no server-side retry; the failure is
        # marked retryable so a client may resubmit
        pool = WorkerPool(
            workers=1, queue_size=4, job_timeout_s=60.0, job_max_attempts=1
        )
        pool.start()
        try:
            crash = make_job(debug={"crash": True})
            pool.submit(crash)
            assert crash.done.wait(60)
            assert crash.state == FAILED
            assert crash.retryable is True
            assert pool.stats()["retries"] == 0
        finally:
            pool.shutdown()


class TestTimeouts:
    def test_overrunning_job_is_killed(self, pool):
        slow = make_job(debug={"sleep_s": 30}, timeout_s=0.2)
        pool.submit(slow)
        assert slow.done.wait(60)
        assert slow.state == FAILED
        assert "timed out after 0.2s" in slow.error
        assert pool.stats()["timeouts"] == 1
        # the slot is warm again
        ok = make_job()
        pool.submit(ok)
        assert ok.done.wait(60)
        assert ok.state == DONE


class TestBackpressureAndDrain:
    def test_full_queue_rejects(self):
        pool = WorkerPool(workers=1, queue_size=1, job_timeout_s=60.0)
        pool.start()
        try:
            jobs = [make_job(debug={"sleep_s": 0.6}) for _ in range(3)]
            accepted = []
            with pytest.raises(QueueFullError) as exc_info:
                for job in jobs:
                    pool.submit(job)
                    accepted.append(job)
            assert exc_info.value.status == 429
            # at most 1 in flight + 1 queued; the exact split depends on
            # how fast the dispatcher dequeues the first job
            assert 1 <= len(accepted) <= 2
            for job in accepted:
                assert job.done.wait(60)
                assert job.state == DONE
        finally:
            pool.shutdown()

    def test_drain_finishes_accepted_work_and_rejects_new(self):
        pool = WorkerPool(workers=1, queue_size=4, job_timeout_s=60.0)
        pool.start()
        try:
            inflight = make_job(debug={"sleep_s": 0.4})
            pool.submit(inflight)
            pool.begin_drain()
            with pytest.raises(DrainingError) as exc_info:
                pool.submit(make_job())
            assert exc_info.value.status == 503
            assert pool.drain(timeout=60)
            assert inflight.state == DONE
        finally:
            pool.shutdown()

    def test_drain_timeout_reports_false(self):
        pool = WorkerPool(workers=1, queue_size=4, job_timeout_s=60.0)
        pool.start()
        try:
            pool.submit(make_job(debug={"sleep_s": 2.0}))
            assert pool.drain(timeout=0.1) is False
        finally:
            pool.shutdown()

    def test_shutdown_is_idempotent(self):
        pool = WorkerPool(workers=1, queue_size=2)
        pool.start()
        pool.shutdown()
        pool.shutdown()
        assert pool.stats()["workers_alive"] == 0


class TestValidation:
    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=0)
        with pytest.raises(ValueError):
            WorkerPool(queue_size=0)
