"""Wire format: config normalization, circuit payloads, cache keys, reports."""

import pytest

from repro.circuits import build, ripple_carry_adder
from repro.errors import ServiceError
from repro.io import dumps_bench, dumps_blif
from repro.io.json_report import canonical_dumps, dumps_json_report, strict_loads
from repro.pipeline import Pipeline
from repro.service.protocol import (
    PIPELINE_DEFAULTS,
    REPORT_SCHEMA,
    bench_circuit,
    blif_circuit,
    build_pipeline,
    cache_key,
    circuit_payload_from_source,
    flow_report,
    load_circuit,
    normalize_config,
    registry_circuit,
)


class TestNormalizeConfig:
    def test_none_gives_defaults(self):
        assert normalize_config(None) == PIPELINE_DEFAULTS

    def test_partial_overrides(self):
        cfg = normalize_config({"n_phases": 1, "use_t1": False})
        assert cfg["n_phases"] == 1
        assert cfg["use_t1"] is False
        assert cfg["sweeps"] == PIPELINE_DEFAULTS["sweeps"]

    def test_unknown_key_rejected(self):
        with pytest.raises(ServiceError, match="unknown config key"):
            normalize_config({"phazes": 4})

    def test_wrong_type_rejected(self):
        with pytest.raises(ServiceError, match="expects int"):
            normalize_config({"n_phases": "4"})

    def test_bool_is_not_int(self):
        with pytest.raises(ServiceError, match="expects int"):
            normalize_config({"sweeps": True})

    def test_non_dict_rejected(self):
        with pytest.raises(ServiceError, match="must be an object"):
            normalize_config([1, 2])


class TestBuildPipeline:
    def test_matches_standard(self):
        pipe = build_pipeline(normalize_config(None))
        assert pipe.names() == Pipeline.standard().names()

    def test_baseline_drops_t1(self):
        pipe = build_pipeline(normalize_config({"use_t1": False}))
        assert "t1_detect" not in pipe.names()

    def test_invalid_combination_is_service_error(self):
        with pytest.raises(ServiceError, match="invalid pipeline config"):
            build_pipeline(normalize_config({"n_phases": 2, "use_t1": True}))


class TestCircuits:
    def test_registry_roundtrip(self):
        net = load_circuit(registry_circuit("adder", "ci"))
        ref = build("adder", "ci")
        assert net.structural_hash() == ref.structural_hash()

    def test_blif_roundtrip(self):
        from repro.network import check_equivalence

        net = ripple_carry_adder(4)
        loaded = load_circuit(blif_circuit(dumps_blif(net)))
        # SOP covers re-expand into different gates; functions must match
        assert len(loaded.pis) == len(net.pis)
        assert len(loaded.pos) == len(net.pos)
        assert check_equivalence(net, loaded).equivalent

    def test_bench_roundtrip(self):
        net = ripple_carry_adder(4)
        loaded = load_circuit(bench_circuit(dumps_bench(net)))
        assert len(loaded.pos) == len(net.pos)

    def test_unknown_kind(self):
        with pytest.raises(ServiceError, match="unknown circuit kind"):
            load_circuit({"kind": "verilog", "text": ""})

    def test_missing_kind(self):
        with pytest.raises(ServiceError, match="'kind'"):
            load_circuit({"name": "adder"})

    def test_bad_registry_name(self):
        with pytest.raises(ServiceError, match="bad 'registry'"):
            load_circuit(registry_circuit("nope"))

    def test_payload_from_source_registry(self):
        assert circuit_payload_from_source("adder", "ci") == {
            "kind": "registry",
            "name": "adder",
            "preset": "ci",
        }

    def test_payload_from_source_file(self, tmp_path):
        path = tmp_path / "c.blif"
        path.write_text(dumps_blif(ripple_carry_adder(4)))
        payload = circuit_payload_from_source(str(path))
        assert payload["kind"] == "blif"
        assert ".inputs" in payload["text"]

    def test_payload_from_source_unknown(self):
        with pytest.raises(ServiceError, match="unknown benchmark"):
            circuit_payload_from_source("no-such-thing")


class TestCacheKey:
    def test_deterministic(self):
        cfg = normalize_config(None)
        assert cache_key(ripple_carry_adder(4), cfg) == cache_key(
            ripple_carry_adder(4), cfg
        )

    def test_invariant_under_compact(self):
        cfg = normalize_config(None)
        net = ripple_carry_adder(6)
        net.add_and(net.pis[0], net.pis[1])  # dead node
        key = cache_key(net, cfg)
        net.compact()
        assert cache_key(net, cfg) == key

    def test_config_order_and_defaults_do_not_split(self):
        net = ripple_carry_adder(4)
        a = normalize_config({"n_phases": 4, "use_t1": True})
        b = normalize_config({"use_t1": True, "n_phases": 4})
        explicit = normalize_config(dict(PIPELINE_DEFAULTS))
        assert cache_key(net, a) == cache_key(net, b) == cache_key(
            net, explicit
        )

    def test_config_change_changes_key(self):
        net = ripple_carry_adder(4)
        assert cache_key(net, normalize_config({"sweeps": 4})) != cache_key(
            net, normalize_config({"sweeps": 5})
        )

    def test_circuit_change_changes_key(self):
        cfg = normalize_config(None)
        assert cache_key(ripple_carry_adder(4), cfg) != cache_key(
            ripple_carry_adder(5), cfg
        )


class TestFlowReport:
    def test_schema_and_strict_roundtrip(self):
        cfg = normalize_config({"verify": "none"})
        ctx = build_pipeline(cfg).run(build("adder", "ci"))
        report = flow_report(ctx, config=cfg)
        assert report["schema"] == REPORT_SCHEMA
        assert report["benchmark"] == "adder"
        assert report["cached"] is False
        assert report["metrics"]["dffs"] == ctx.metrics.num_dffs
        assert report["metrics"]["area_jj"] == ctx.metrics.area_jj
        assert report["t1"] == {"found": ctx.t1_found, "used": ctx.t1_used}
        # the wire round trip is strict JSON and lossless
        assert strict_loads(dumps_json_report(report)) == report
        canonical_dumps(report)  # canonicalisable (no non-finite floats)
