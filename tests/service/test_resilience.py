"""End-to-end resilience: client retries, injected faults, quarantine.

Every failure here is injected through :mod:`repro.faults` — real code
paths under a deterministic schedule, not mocks.
"""

import time

import pytest

from repro import faults
from repro.errors import FaultInjected, ServiceError
from repro.service import (
    FlowDaemon,
    FlowService,
    ResultCache,
    ServiceClient,
    registry_circuit,
)

FAST_CONFIG = {"verify": "none"}
ADDER = registry_circuit("adder", "ci")


def make_service(**kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("queue_size", 8)
    kwargs.setdefault("job_timeout_s", 60.0)
    service = FlowService(**kwargs)
    service.start()
    return service


class TestClientRetries:
    """Transport-level retry/backoff, against a real daemon."""

    @pytest.fixture
    def daemon(self):
        d = FlowDaemon(port=0, workers=1, queue_size=8, job_timeout_s=60.0)
        d.start()
        yield d
        d.stop()

    def test_retries_injected_connection_resets(self, daemon):
        client = ServiceClient(daemon.url, retries=4, backoff_s=0.01)
        client.wait_ready(30.0)
        with faults.injected("client.request@nth=1;client.request@nth=2"):
            # first two transport attempts die; the third succeeds
            health = client.healthz()
        assert health["status"] == "ok"

    def test_retry_budget_exhausts(self, daemon):
        client = ServiceClient(daemon.url, retries=2, backoff_s=0.01)
        client.wait_ready(30.0)
        with faults.injected("client.request@after=0"):
            with pytest.raises(ServiceError) as exc_info:
                client.healthz()
        assert exc_info.value.status == 0
        assert "injected connection reset" in str(exc_info.value)

    def test_no_retries_fails_fast(self, daemon):
        client = ServiceClient(daemon.url, retries=0)
        client.wait_ready(30.0)
        with faults.injected("client.request@nth=1"):
            with pytest.raises(ServiceError):
                client.healthz()

    def test_retries_injected_server_rejects(self, daemon):
        # server-side 429 (fault: server.reject) is retried with backoff
        client = ServiceClient(daemon.url, retries=4, backoff_s=0.01)
        client.wait_ready(30.0)
        with faults.injected("server.reject@nth=1"):
            report = client.submit_and_wait(ADDER, config=FAST_CONFIG)
        assert report["metrics"]["area_jj"] > 0
        assert client.metrics()["jobs"]["rejected"] == 1

    def test_backoff_is_capped_and_deterministic(self):
        client = ServiceClient(
            "http://127.0.0.1:1", retries=8,
            backoff_s=0.1, backoff_cap_s=0.4, retry_jitter=0.1, retry_seed=0,
        )
        delays = [client._backoff_delay(i) for i in range(8)]
        assert all(d <= 0.4 * 1.1 + 1e-9 for d in delays)
        other = ServiceClient(
            "http://127.0.0.1:1", retries=8,
            backoff_s=0.1, backoff_cap_s=0.4, retry_jitter=0.1, retry_seed=0,
        )
        assert delays == [other._backoff_delay(i) for i in range(8)]

    def test_wait_ready_tolerates_boot_refusals(self):
        # nothing listens on the daemon's port yet: wait_ready must poll
        # through connection-refused and time out cleanly, fast probes
        client = ServiceClient("http://127.0.0.1:1", timeout=0.5)
        start = time.monotonic()
        with pytest.raises(ServiceError, match="not ready"):
            client.wait_ready(timeout=0.6)
        assert time.monotonic() - start < 10.0


class TestWorkerFaultPoints:
    """Dispatcher-evaluated faults: crash, hang, flow error, pipe."""

    @pytest.fixture
    def service(self):
        service = make_service()
        yield service
        service.stop(drain_timeout=10.0)

    def test_injected_crash_retries_then_succeeds(self, service):
        # the job's first attempt crashes its worker; the retry runs clean
        with faults.injected("worker.crash@nth=1"):
            status = service.submit({"circuit": ADDER, "config": FAST_CONFIG})
            job = service.wait(status["job_id"], timeout=60)
            metrics = service.metrics()  # inside: /metrics sees the plan
        assert job.state == "done"
        assert job.attempts == 2
        assert metrics["jobs"]["crashes"] == 1
        assert metrics["jobs"]["retries"] == 1
        assert metrics["jobs"]["quarantined"] == 0
        assert metrics["faults"] == {"worker.crash": 1}

    def test_persistent_crash_quarantines(self, service):
        with faults.injected("worker.crash@after=0"):
            status = service.submit({"circuit": ADDER, "config": FAST_CONFIG})
            job = service.wait(status["job_id"], timeout=60)
        assert job.state == "quarantined"
        assert job.attempts == 3
        assert "all 3 attempts" in job.error

    def test_injected_flow_error_fails_without_retry(self, service):
        # flow errors are deterministic: one attempt, terminal failure
        with faults.injected("worker.flow_error@nth=1"):
            status = service.submit({"circuit": ADDER, "config": FAST_CONFIG})
            job = service.wait(status["job_id"], timeout=60)
        assert job.state == "failed"
        assert job.attempts == 1
        assert "injected flow error" in job.error
        assert service.metrics()["jobs"]["retries"] == 0

    def test_injected_hang_times_out_without_retry(self):
        service = make_service(job_timeout_s=0.3)
        try:
            with faults.injected("worker.hang@nth=1"):
                status = service.submit(
                    {"circuit": ADDER, "config": FAST_CONFIG}
                )
                job = service.wait(status["job_id"], timeout=60)
            assert job.state == "failed"
            assert "timed out" in job.error
            assert service.metrics()["jobs"]["timeouts"] == 1
            assert service.metrics()["jobs"]["retries"] == 0
        finally:
            service.stop(drain_timeout=10.0)

    def test_pipe_fault_respawns_and_resends(self, service):
        # the worker dies just before dispatch: the send path respawns
        # the slot and re-sends — the job itself still succeeds first try
        with faults.injected("dispatch.pipe@nth=1"):
            status = service.submit({"circuit": ADDER, "config": FAST_CONFIG})
            job = service.wait(status["job_id"], timeout=60)
        assert job.state == "done"
        assert job.attempts == 1
        assert service.metrics()["workers"]["respawns"] == 1

    def test_result_of_quarantined_job_is_500(self, service):
        with faults.injected("worker.crash@after=0"):
            status = service.submit({"circuit": ADDER, "config": FAST_CONFIG})
            service.wait(status["job_id"], timeout=60)
        with pytest.raises(ServiceError) as exc_info:
            service.job_result(status["job_id"])
        assert exc_info.value.status == 500
        assert "quarantined" in str(exc_info.value)


class TestCacheFaults:
    def test_cache_faults_raise_fault_injected(self):
        cache = ResultCache(4)
        with faults.injected("cache.put@nth=1"):
            with pytest.raises(FaultInjected):
                cache.put("k", {"v": 1})
        with faults.injected("cache.get@nth=1"):
            cache.put("k", {"v": 1})
            with pytest.raises(FaultInjected):
                cache.get("k")

    def test_broken_cache_degrades_to_miss(self):
        # cache.get blows up on the duplicate submission: the service
        # treats it as a miss and runs the job instead of failing it
        service = make_service()
        try:
            payload = {"circuit": ADDER, "config": FAST_CONFIG}
            first = service.submit(payload)
            service.wait(first["job_id"], timeout=60)
            with faults.injected("cache.get@after=0"):
                second = service.submit(payload)
                job = service.wait(second["job_id"], timeout=60)
            assert job.state == "done"
            assert second["cached"] is False
            assert service.metrics()["cache"]["errors"] >= 1
        finally:
            service.stop(drain_timeout=10.0)

    def test_broken_cache_store_keeps_result(self):
        # cache.put blows up when the first result lands: the report is
        # still served; only the cache entry is lost (next submit reruns)
        service = make_service()
        try:
            with faults.injected("cache.put@after=0"):
                payload = {"circuit": ADDER, "config": FAST_CONFIG}
                first = service.submit(payload)
                job = service.wait(first["job_id"], timeout=60)
                assert job.state == "done"
                assert service.job_result(job.id)["metrics"]["area_jj"] > 0
                second = service.submit(payload)
                assert second["cached"] is False
            assert service.metrics()["cache"]["errors"] >= 1
            service.wait(second["job_id"], timeout=60)
        finally:
            service.stop(drain_timeout=10.0)


class TestSubmitAndWaitResubmission:
    def test_retryable_failure_is_resubmitted(self):
        # server-side retries off (job_max_attempts=1): the crash comes
        # back retryable=True and submit_and_wait resubmits; the second
        # submission runs clean (nth=1 consumed) and succeeds
        daemon = FlowDaemon(
            port=0, workers=1, queue_size=8, job_timeout_s=60.0,
            job_max_attempts=1,
        )
        daemon.start()
        try:
            client = ServiceClient(daemon.url, retries=2, backoff_s=0.01)
            client.wait_ready(30.0)
            with faults.injected("worker.crash@nth=1"):
                report = client.submit_and_wait(
                    ADDER, config=FAST_CONFIG, timeout=60.0
                )
            assert report["metrics"]["area_jj"] > 0
            metrics = client.metrics()
            assert metrics["jobs"]["crashes"] == 1
            assert metrics["jobs"]["quarantined"] == 0
        finally:
            daemon.stop()


class TestDrainWithRetries:
    def test_drain_timeout_expires_with_pending_work(self):
        service = make_service()
        try:
            status = service.submit(
                {"circuit": ADDER, "config": FAST_CONFIG,
                 "debug": {"sleep_s": 3.0}}
            )
            start = time.monotonic()
            assert service.pool.drain(timeout=0.15) is False
            assert time.monotonic() - start < 2.0
            service.wait(status["job_id"], timeout=60)
        finally:
            service.stop(drain_timeout=10.0)

    def test_accepted_job_retries_during_drain(self):
        # a job accepted before the drain may still burn crash retries
        # during it; the drain completes and the job terminates
        service = make_service()
        try:
            with faults.injected("worker.crash@nth=1"):
                status = service.submit(
                    {"circuit": ADDER, "config": FAST_CONFIG}
                )
                service.begin_drain()
                job = service.wait(status["job_id"], timeout=60)
            assert job.state == "done"
            assert job.attempts == 2
            assert service.pool.drain(timeout=30.0) is True
        finally:
            service.stop(drain_timeout=10.0)


class TestFaultPlanThroughService:
    def test_service_installs_and_reports_plan(self):
        service = make_service(fault_plan="worker.crash@nth=1")
        try:
            status = service.submit({"circuit": ADDER, "config": FAST_CONFIG})
            job = service.wait(status["job_id"], timeout=60)
            assert job.state == "done"
            assert job.attempts == 2
            assert service.metrics()["faults"] == {"worker.crash": 1}
        finally:
            service.stop(drain_timeout=10.0)
