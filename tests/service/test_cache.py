"""ResultCache: LRU bounds, counters, copy isolation, thread safety."""

import threading

import pytest

from repro.service.cache import ResultCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = ResultCache()
        assert cache.get("k") is None
        cache.put("k", {"v": 1})
        assert cache.get("k") == {"v": 1}
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_contains_and_len(self):
        cache = ResultCache()
        cache.put("a", {})
        assert "a" in cache
        assert "b" not in cache
        assert len(cache) == 1

    def test_clear(self):
        cache = ResultCache()
        cache.put("a", {})
        cache.clear()
        assert len(cache) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)


class TestCopyIsolation:
    def test_put_copies(self):
        cache = ResultCache()
        report = {"metrics": {"dffs": 1}}
        cache.put("k", report)
        report["metrics"]["dffs"] = 999
        assert cache.get("k")["metrics"]["dffs"] == 1

    def test_get_copies(self):
        cache = ResultCache()
        cache.put("k", {"metrics": {"dffs": 1}})
        first = cache.get("k")
        first["metrics"]["dffs"] = 999
        first["cached"] = True  # what the server does before responding
        assert cache.get("k") == {"metrics": {"dffs": 1}}


class TestLru:
    def test_eviction_order_is_least_recently_used(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", {"n": 1})
        cache.put("b", {"n": 2})
        assert cache.get("a") is not None  # refresh a
        cache.put("c", {"n": 3})  # evicts b
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.stats()["evictions"] == 1

    def test_overwrite_does_not_evict(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", {"n": 1})
        cache.put("a", {"n": 2})
        cache.put("b", {"n": 3})
        assert len(cache) == 2
        assert cache.get("a") == {"n": 2}
        assert cache.stats()["evictions"] == 0


class TestThreadSafety:
    def test_concurrent_puts_and_gets(self):
        cache = ResultCache(max_entries=64)
        errors = []

        def worker(base):
            try:
                for i in range(200):
                    key = f"k{(base + i) % 100}"
                    cache.put(key, {"v": i})
                    got = cache.get(key)
                    assert got is None or "v" in got
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(b,)) for b in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 64
