"""Shared service-test fixtures: hard timeouts, no leaked fault plans.

Service tests exercise worker pools, injected crashes and hangs; a
regression there fails as a *hang*.  With no pytest-timeout plugin in
the image, an autouse SIGALRM fixture turns any hang into a loud
``TimeoutError`` with a traceback instead of a stuck CI job.  Tune with
``REPRO_TEST_TIMEOUT_S`` (seconds, default 120).
"""

import os
import signal

import pytest

from repro import faults

TIMEOUT_S = float(os.environ.get("REPRO_TEST_TIMEOUT_S", "120"))


@pytest.fixture(autouse=True)
def hard_timeout():
    """Kill any test that wedges past the hard wall-clock limit."""
    if not hasattr(signal, "SIGALRM"):  # pragma: no cover - non-POSIX
        yield
        return

    def _on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded the {TIMEOUT_S:g}s hard timeout "
            "(REPRO_TEST_TIMEOUT_S)"
        )

    old = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, TIMEOUT_S)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, old)


@pytest.fixture(autouse=True)
def no_leaked_fault_plan():
    """A fault plan installed by one test must never outlive it."""
    yield
    faults.clear()
