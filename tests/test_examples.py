"""Smoke tests: every shipped example runs to completion.

Examples are user-facing deliverables; a broken one is a bug.  Each runs
in a subprocess in a tmp cwd (some write artefact files into cwd; a tmp
cwd keeps the tree clean), so ``src`` must be put on PYTHONPATH as an
*absolute* path — a relative ``PYTHONPATH=src`` from the repo root would
not resolve from the subprocess's cwd.
"""

import os
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).parent.parent
EXAMPLES = sorted(p.name for p in (REPO / "examples").glob("*.py"))


def _env_with_src():
    env = dict(os.environ)
    src = str(REPO / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def test_expected_examples_present():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs(example, tmp_path):
    script = REPO / "examples" / example
    result = subprocess.run(
        [sys.executable, str(script)],
        cwd=tmp_path,
        env=_env_with_src(),
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print something"
