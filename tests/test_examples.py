"""Smoke tests: every shipped example runs to completion.

Examples are user-facing deliverables; a broken one is a bug.  Each runs
in a subprocess in the repository root (some write artefact files into
cwd; a tmp cwd keeps the tree clean).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    p.name for p in (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_expected_examples_present():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs(example, tmp_path):
    script = pathlib.Path(__file__).parent.parent / "examples" / example
    result = subprocess.run(
        [sys.executable, str(script)],
        cwd=tmp_path,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print something"
