"""Tests for the repro-flow CLI."""

import pytest

from repro.cli import main, make_parser


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("adder", "c6288", "log2"):
        assert name in out


def test_run_benchmark_ci(capsys):
    assert main(["run", "adder", "--preset", "ci", "--t1"]) == 0
    out = capsys.readouterr().out
    assert "T1 cells  : found 15, used 15" in out
    assert "area (JJ)" in out


def test_run_baseline_no_t1(capsys):
    assert main(["run", "adder", "--preset", "ci", "-n", "1",
                 "--verify", "none"]) == 0
    out = capsys.readouterr().out
    assert "1-phase" in out


def test_run_blif_file(tmp_path, capsys):
    from repro.circuits import ripple_carry_adder
    from repro.io import write_blif

    path = tmp_path / "add.blif"
    with open(path, "w") as fh:
        write_blif(ripple_carry_adder(4), fh)
    assert main(["run", str(path), "--t1", "--verify", "full"]) == 0
    out = capsys.readouterr().out
    assert "verified  : True" in out


def test_run_writes_dot(tmp_path, capsys):
    dot = tmp_path / "out.dot"
    assert main(
        ["run", "adder", "--preset", "ci", "--t1", "--dot", str(dot)]
    ) == 0
    assert dot.read_text().startswith("digraph")


def test_table_subset(capsys):
    assert main(
        ["table", "adder", "c6288", "--preset", "ci", "--verify", "none"]
    ) == 0
    out = capsys.readouterr().out
    assert "adder" in out
    assert "c6288" in out
    assert "Average" in out


def test_fig1b(capsys):
    assert main(["fig1b"]) == 0
    out = capsys.readouterr().out
    assert "T1 cell pulse-level simulation" in out
    assert "|" in out


def test_run_with_energy(capsys):
    assert main(["run", "adder", "--preset", "ci", "--t1", "--energy",
                 "--frequency", "30"]) == 0
    out = capsys.readouterr().out
    assert "energy    :" in out
    assert "30 GHz" in out


def test_run_with_balance(capsys):
    assert main(["run", "c7552", "--preset", "ci", "--balance",
                 "--verify", "none"]) == 0
    assert "area (JJ)" in capsys.readouterr().out


def test_run_per_edge_insertion(capsys):
    assert main(["run", "adder", "--preset", "ci", "--no-share",
                 "--verify", "none"]) == 0
    assert "#DFF" in capsys.readouterr().out


def test_unknown_benchmark():
    with pytest.raises(SystemExit):
        main(["run", "nonesuch"])


def test_parser_has_all_commands():
    parser = make_parser()
    text = parser.format_help()
    for cmd in ("list", "run", "table", "fig1b",
                "serve", "submit", "status", "result"):
        assert cmd in text


def test_run_json_strict_roundtrip(capsys):
    """--json must emit the strict-JSON flow report, losslessly."""
    from repro.circuits import build
    from repro.io.json_report import strict_loads
    from repro.pipeline import Pipeline

    assert main(["run", "adder", "--preset", "ci", "--t1", "--json"]) == 0
    out = capsys.readouterr().out
    report = strict_loads(out)
    assert report["schema"] == "repro-flow-report/v1"
    assert report["benchmark"] == "adder"
    assert report["config"]["use_t1"] is True
    assert report["cached"] is False
    ctx = Pipeline.standard().run(build("adder", "ci"))
    assert report["metrics"]["dffs"] == ctx.metrics.num_dffs
    assert report["metrics"]["area_jj"] == ctx.metrics.area_jj
    assert report["t1"] == {"found": ctx.t1_found, "used": ctx.t1_used}


def test_submit_against_live_daemon(capsys):
    """submit/status/result verbs against an in-process daemon."""
    from repro.io.json_report import strict_loads
    from repro.service import FlowDaemon

    daemon = FlowDaemon(port=0, workers=1, queue_size=4, job_timeout_s=60.0)
    daemon.start()
    try:
        url = daemon.url
        assert main(["submit", "adder", "--preset", "ci",
                     "--verify", "none", "--url", url, "--wait"]) == 0
        report = strict_loads(capsys.readouterr().out)
        assert report["benchmark"] == "adder"
        assert report["cached"] is False

        # resubmission: status verb shows the synchronous cache hit
        assert main(["submit", "adder", "--preset", "ci",
                     "--verify", "none", "--url", url]) == 0
        status = strict_loads(capsys.readouterr().out)
        assert status["state"] == "done"
        assert status["cached"] is True

        assert main(["status", status["job_id"], "--url", url]) == 0
        assert strict_loads(capsys.readouterr().out)["state"] == "done"
        assert main(["result", status["job_id"], "--url", url]) == 0
        cached_report = strict_loads(capsys.readouterr().out)
        assert cached_report["metrics"] == report["metrics"]
    finally:
        daemon.stop()


def test_client_verbs_error_cleanly_when_daemon_down(capsys):
    url = "http://127.0.0.1:1"  # nothing listens on port 1
    assert main(["status", "nojob", "--url", url]) == 2
    assert "error:" in capsys.readouterr().err


def test_table_accepts_blif_file(tmp_path, capsys):
    from repro.circuits import ripple_carry_adder
    from repro.io import write_blif

    path = tmp_path / "add.blif"
    with open(path, "w") as fh:
        write_blif(ripple_carry_adder(4), fh)
    assert main(["table", str(path), "--verify", "none"]) == 0
    out = capsys.readouterr().out
    assert "add.blif" in out
    assert "Average" in out


def test_invalid_t1_phase_count_is_clean_error(capsys):
    assert main(["run", "adder", "--preset", "ci", "-n", "2", "--t1"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "n_phases >= 3" in err


def test_run_timings_breakdown(capsys):
    """--timings must print a per-pass wall-clock breakdown."""
    assert main(["run", "adder", "--preset", "ci", "--t1", "--timings"]) == 0
    out = capsys.readouterr().out
    assert "per-pass timing:" in out
    for pass_name in ("decompose", "t1_detect", "map", "phase_assign",
                      "dff_insert", "verify_metrics"):
        assert pass_name in out, pass_name
    # every line of the breakdown carries a seconds figure
    lines = [l for l in out.splitlines() if l.startswith("  ") and " s" in l]
    assert len(lines) >= 6
