"""Tests for the repro-flow CLI."""

import pytest

from repro.cli import main, make_parser


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("adder", "c6288", "log2"):
        assert name in out


def test_run_benchmark_ci(capsys):
    assert main(["run", "adder", "--preset", "ci", "--t1"]) == 0
    out = capsys.readouterr().out
    assert "T1 cells  : found 15, used 15" in out
    assert "area (JJ)" in out


def test_run_baseline_no_t1(capsys):
    assert main(["run", "adder", "--preset", "ci", "-n", "1",
                 "--verify", "none"]) == 0
    out = capsys.readouterr().out
    assert "1-phase" in out


def test_run_blif_file(tmp_path, capsys):
    from repro.circuits import ripple_carry_adder
    from repro.io import write_blif

    path = tmp_path / "add.blif"
    with open(path, "w") as fh:
        write_blif(ripple_carry_adder(4), fh)
    assert main(["run", str(path), "--t1", "--verify", "full"]) == 0
    out = capsys.readouterr().out
    assert "verified  : True" in out


def test_run_writes_dot(tmp_path, capsys):
    dot = tmp_path / "out.dot"
    assert main(
        ["run", "adder", "--preset", "ci", "--t1", "--dot", str(dot)]
    ) == 0
    assert dot.read_text().startswith("digraph")


def test_table_subset(capsys):
    assert main(
        ["table", "adder", "c6288", "--preset", "ci", "--verify", "none"]
    ) == 0
    out = capsys.readouterr().out
    assert "adder" in out
    assert "c6288" in out
    assert "Average" in out


def test_fig1b(capsys):
    assert main(["fig1b"]) == 0
    out = capsys.readouterr().out
    assert "T1 cell pulse-level simulation" in out
    assert "|" in out


def test_run_with_energy(capsys):
    assert main(["run", "adder", "--preset", "ci", "--t1", "--energy",
                 "--frequency", "30"]) == 0
    out = capsys.readouterr().out
    assert "energy    :" in out
    assert "30 GHz" in out


def test_run_with_balance(capsys):
    assert main(["run", "c7552", "--preset", "ci", "--balance",
                 "--verify", "none"]) == 0
    assert "area (JJ)" in capsys.readouterr().out


def test_run_per_edge_insertion(capsys):
    assert main(["run", "adder", "--preset", "ci", "--no-share",
                 "--verify", "none"]) == 0
    assert "#DFF" in capsys.readouterr().out


def test_unknown_benchmark():
    with pytest.raises(SystemExit):
        main(["run", "nonesuch"])


def test_parser_has_all_commands():
    parser = make_parser()
    text = parser.format_help()
    for cmd in ("list", "run", "table", "fig1b"):
        assert cmd in text


def test_table_accepts_blif_file(tmp_path, capsys):
    from repro.circuits import ripple_carry_adder
    from repro.io import write_blif

    path = tmp_path / "add.blif"
    with open(path, "w") as fh:
        write_blif(ripple_carry_adder(4), fh)
    assert main(["table", str(path), "--verify", "none"]) == 0
    out = capsys.readouterr().out
    assert "add.blif" in out
    assert "Average" in out


def test_invalid_t1_phase_count_is_clean_error(capsys):
    assert main(["run", "adder", "--preset", "ci", "-n", "2", "--t1"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "n_phases >= 3" in err


def test_run_timings_breakdown(capsys):
    """--timings must print a per-pass wall-clock breakdown."""
    assert main(["run", "adder", "--preset", "ci", "--t1", "--timings"]) == 0
    out = capsys.readouterr().out
    assert "per-pass timing:" in out
    for pass_name in ("decompose", "t1_detect", "map", "phase_assign",
                      "dff_insert", "verify_metrics"):
        assert pass_name in out, pass_name
    # every line of the breakdown carries a seconds figure
    lines = [l for l in out.splitlines() if l.startswith("  ") and " s" in l]
    assert len(lines) >= 6
