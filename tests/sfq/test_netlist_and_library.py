"""Tests for SFQNetlist, the cell library and the multiphase algebra."""

import pytest

from repro.errors import MappingError, NetworkError, TimingError
from repro.network import Gate
from repro.sfq import (
    CellKind,
    SFQNetlist,
    chain_stages,
    conventional_full_adder_area,
    default_library,
    depth_cycles,
    edge_dffs,
    epoch_of,
    net_dffs,
    phase_of,
    source_stage_for,
    stage_of,
)


class TestCellLibrary:
    def test_t1_full_adder_anchor(self):
        lib = default_library()
        assert lib.t1.jj_count == 29, "the paper's 29-JJ full adder"

    def test_forty_percent_anchor(self):
        # T1 FA must be ~40% of the conventional realisation ("60% fewer")
        conv = conventional_full_adder_area()
        ratio = 29 / conv
        assert 0.35 <= ratio <= 0.45

    def test_missing_cell_raises(self):
        lib = default_library()
        with pytest.raises(MappingError):
            lib.cell_for(Gate.XOR, 5)

    def test_max_arity(self):
        lib = default_library()
        assert lib.max_arity(Gate.XOR) == 3
        assert lib.max_arity(Gate.NAND) == 2

    def test_all_gate_cells_clocked(self):
        lib = default_library()
        for spec in lib.gate_cells.values():
            assert spec.clocked
        assert not lib.splitter.clocked
        assert lib.dff.clocked


class TestMultiphaseAlgebra:
    def test_stage_of_eq1(self):
        # sigma = n*S + phi
        assert stage_of(epoch=3, phase=2, n_phases=4) == 14

    def test_phase_epoch_roundtrip(self):
        for stage in range(40):
            n = 4
            assert stage_of(epoch_of(stage, n), phase_of(stage, n), n) == stage

    def test_bad_phase_rejected(self):
        with pytest.raises(TimingError):
            stage_of(0, 4, 4)

    def test_depth_cycles(self):
        assert depth_cycles(128, 1) == 128
        assert depth_cycles(128, 4) == 32
        assert depth_cycles(130, 4) == 33
        assert depth_cycles(0, 4) == 0

    @pytest.mark.parametrize(
        "gap,n,expect",
        [(1, 1, 0), (2, 1, 1), (5, 1, 4), (1, 4, 0), (4, 4, 0), (5, 4, 1), (9, 4, 2)],
    )
    def test_edge_dffs(self, gap, n, expect):
        assert edge_dffs(gap, n) == expect

    def test_edge_dffs_single_phase_classic(self):
        # n=1 degenerates to full path balancing: gap - 1
        for gap in range(1, 20):
            assert edge_dffs(gap, 1) == gap - 1

    def test_net_dffs_is_max_not_sum(self):
        assert net_dffs([9, 5, 2], 4) == 2

    def test_chain_and_sources(self):
        chain = chain_stages(driver_stage=0, longest_gap=9, n_phases=4)
        assert chain == [4, 8]
        assert source_stage_for(0, chain, 9, 4) == 8
        assert source_stage_for(0, chain, 5, 4) == 4
        assert source_stage_for(0, chain, 3, 4) == 0

    def test_source_too_far_raises(self):
        with pytest.raises(TimingError):
            source_stage_for(0, [], 6, 4)


class TestNetlist:
    def test_build_and_query(self):
        nl = SFQNetlist("t", n_phases=4)
        a = nl.add_pi("a")
        b = nl.add_pi("b")
        g = nl.add_gate(Gate.AND, [(a, "out"), (b, "out")])
        nl.add_po((g, "out"), "y")
        assert nl.stats()["gates"] == 1
        assert list(nl.edges()) == [(a, g), (b, g)]

    def test_t1_ports(self):
        nl = SFQNetlist()
        a, b, c = nl.add_pi(), nl.add_pi(), nl.add_pi()
        t = nl.add_t1((a, "out"), (b, "out"), (c, "out"))
        nl.add_po((t, "S"))
        nl.add_po((t, "C"))
        nl.add_po((t, "Q"))
        with pytest.raises(NetworkError):
            nl.add_po((t, "out"))

    def test_bad_port_rejected(self):
        nl = SFQNetlist()
        a = nl.add_pi()
        with pytest.raises(NetworkError):
            nl.add_gate(Gate.NOT, [(a, "S")])

    def test_missing_cell_rejected(self):
        nl = SFQNetlist()
        with pytest.raises(NetworkError):
            nl.add_po((7, "out"))

    def test_consumers_includes_pos(self):
        nl = SFQNetlist()
        a = nl.add_pi()
        g = nl.add_gate(Gate.NOT, [(a, "out")])
        nl.add_po((g, "out"))
        cons = nl.consumers()
        assert cons[(a, "out")] == [g]
        assert cons[(g, "out")] == [-1]

    def test_topological_cells(self):
        nl = SFQNetlist()
        a = nl.add_pi()
        g1 = nl.add_gate(Gate.NOT, [(a, "out")])
        g2 = nl.add_gate(Gate.NOT, [(g1, "out")])
        order = nl.topological_cells()
        assert order.index(a) < order.index(g1) < order.index(g2)

    def test_dff_and_const(self):
        nl = SFQNetlist()
        a = nl.add_pi()
        d = nl.add_dff((a, "out"), stage=2)
        k = nl.add_const(False)
        nl.add_po((d, "out"))
        nl.add_po((k, "out"))
        assert nl.num_dffs() == 1
        assert nl.cells[k].kind is CellKind.CONST0
