"""Edge cases of the streaming simulator: constants, PI phases, waves."""

import pytest

from repro.errors import SimulationError
from repro.network import Gate, LogicNetwork
from repro.core import FlowConfig, run_flow
from repro.sfq import PulseSimulator, SFQNetlist
from repro.sfq.netlist import CellKind


def test_const_pos_stream():
    nl = SFQNetlist(n_phases=2)
    nl.add_pi()
    zero = nl.add_const(False)
    one = nl.add_const(True)
    nl.add_po((zero, "out"), "z")
    nl.add_po((one, "out"), "o")
    res = PulseSimulator(nl).run([[0], [1], [0]])
    assert res.po_values == [[0, 1], [0, 1], [0, 1]]


def test_pi_at_late_phase():
    nl = SFQNetlist(n_phases=4)
    a = nl.add_pi()
    nl.cells[a].stage = 3
    g = nl.add_gate(Gate.NOT, [(a, "out")])
    nl.cells[g].stage = 5
    nl.add_po((g, "out"))
    res = PulseSimulator(nl).run([[0], [1], [0], [1]])
    assert [v[0] for v in res.po_values] == [1, 0, 1, 0]


def test_empty_wave_list():
    nl = SFQNetlist(n_phases=2)
    nl.add_pi()
    res = PulseSimulator(nl).run([])
    assert res.po_values == []
    assert res.num_waves == 0


def test_pi_observed_directly():
    nl = SFQNetlist(n_phases=1)
    a = nl.add_pi()
    nl.add_po((a, "out"), "echo")
    res = PulseSimulator(nl).run([[1], [0], [1]])
    assert [v[0] for v in res.po_values] == [1, 0, 1]


def test_squarer_with_const_po_streams():
    """End-to-end: circuit with a genuinely constant PO streams fine."""
    from repro.circuits import squarer
    from repro.network import simulate_words

    net = squarer(4)
    res = run_flow(net, FlowConfig(n_phases=4, use_t1=True, verify="none"))
    waves = [[(v >> i) & 1 for i in range(4)] for v in range(10)]
    out = PulseSimulator(res.netlist).run(waves)
    for w, vec in enumerate(waves):
        assert out.po_values[w] == simulate_words(net, [vec])[0]


def test_back_to_back_runs_independent():
    """Simulator state must not leak between runs."""
    net = LogicNetwork()
    a, b, c = (net.add_pi() for _ in range(3))
    cell = net.add_t1_cell(a, b, c)
    net.add_po(net.add_t1_tap(cell, Gate.T1_S))
    res = run_flow(net, FlowConfig(n_phases=4, use_t1=False, verify="none"))
    sim = PulseSimulator(res.netlist)
    first = sim.run([[1, 1, 1]])
    second = sim.run([[1, 1, 1]])
    assert first.po_values == second.po_values == [[1]]


def test_dff_chain_delays_correctly():
    """A hand-built 2-DFF chain (n=1) delivers wave k at stage k+3."""
    nl = SFQNetlist(n_phases=1)
    a = nl.add_pi()
    d1 = nl.add_dff((a, "out"), stage=1)
    d2 = nl.add_dff((d1, "out"), stage=2)
    g = nl.add_gate(Gate.NOT, [(d2, "out")])
    nl.cells[g].stage = 3
    nl.add_po((g, "out"))
    res = PulseSimulator(nl).run([[1], [0], [1], [0]])
    assert [v[0] for v in res.po_values] == [0, 1, 0, 1]
    assert res.horizon == 3 * 1 + 3
