"""Tests for the RSFQ energy/power model."""

import pytest

from repro.circuits import ripple_carry_adder
from repro.core import FlowConfig, run_flow
from repro.sfq.energy import PHI0_WB, EnergyModel, EnergyReport, estimate_energy


def netlist_for(bits=8, use_t1=False):
    return run_flow(
        ripple_carry_adder(bits),
        FlowConfig(n_phases=4, use_t1=use_t1, verify="none"),
    ).netlist


class TestModel:
    def test_switch_energy_is_ic_phi0(self):
        m = EnergyModel(critical_current_ua=100.0)
        assert m.switch_energy_j == pytest.approx(100e-6 * PHI0_WB)
        # ~0.2 aJ for a 100 uA junction — the textbook number
        assert 1e-19 < m.switch_energy_j < 3e-19

    def test_ersfq_removes_static(self):
        assert EnergyModel(ersfq=True).static_power_per_jj_w == 0.0
        assert EnergyModel(ersfq=False).static_power_per_jj_w > 0.0


class TestEstimates:
    def test_total_jj_matches_area(self):
        from repro.metrics import area_jj

        nl = netlist_for()
        rep = estimate_energy(nl)
        assert rep.total_jj == area_jj(nl)

    def test_dynamic_power_scales_with_frequency(self):
        nl = netlist_for()
        p20 = estimate_energy(nl, frequency_ghz=20.0)
        p40 = estimate_energy(nl, frequency_ghz=40.0)
        assert p40.dynamic_power_w == pytest.approx(2 * p20.dynamic_power_w)
        assert p40.static_power_w == p20.static_power_w

    def test_static_dominates_at_low_frequency(self):
        nl = netlist_for()
        rep = estimate_energy(nl, frequency_ghz=1.0)
        assert rep.static_power_w > rep.dynamic_power_w

    def test_t1_flow_lowers_energy(self):
        base = estimate_energy(netlist_for(use_t1=False))
        t1 = estimate_energy(netlist_for(use_t1=True))
        assert t1.total_jj < base.total_jj
        assert t1.total_power_w < base.total_power_w
        assert t1.dynamic_energy_per_cycle_j < base.dynamic_energy_per_cycle_j

    def test_activity_bounds(self):
        nl = netlist_for()
        low = estimate_energy(nl, model=EnergyModel(data_activity=0.0))
        high = estimate_energy(nl, model=EnergyModel(data_activity=1.0))
        assert low.dynamic_energy_per_cycle_j < high.dynamic_energy_per_cycle_j
        # even at zero data activity the clock path still burns energy
        assert low.dynamic_energy_per_cycle_j > 0

    def test_summary_string(self):
        rep = estimate_energy(netlist_for(), frequency_ghz=20.0)
        text = rep.summary()
        assert "JJ total" in text
        assert "GHz" in text
