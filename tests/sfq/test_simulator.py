"""Tests for the pulse-level streaming simulator."""

import random

import pytest

from repro.errors import HazardError, SimulationError, TimingError
from repro.network import Gate, LogicNetwork
from repro.network.simulation import simulate_words
from repro.core import FlowConfig, run_flow
from repro.sfq import PulseSimulator, SFQNetlist, map_to_sfq, stream_compare
from repro.core.phase_assignment import assign_stages
from repro.core.dff_insertion import insert_dffs


def pipeline_of(net: LogicNetwork, n_phases: int) -> SFQNetlist:
    nl, _ = map_to_sfq(net, n_phases=n_phases)
    assign_stages(nl, method="heuristic")
    insert_dffs(nl)
    return nl


def small_circuit():
    net = LogicNetwork()
    a, b, c = (net.add_pi(x) for x in "abc")
    g1 = net.add_and(a, b)
    g2 = net.add_xor(g1, c)
    g3 = net.add_or(g1, g2)
    net.add_po(g2, "y0")
    net.add_po(g3, "y1")
    return net


@pytest.mark.parametrize("n", [1, 2, 4])
def test_streaming_matches_logic(n):
    net = small_circuit()
    nl = pipeline_of(net, n)
    rng = random.Random(n)
    waves = [[rng.randint(0, 1) for _ in net.pis] for _ in range(16)]

    def golden(row):
        return simulate_words(net, [list(row)])[0]

    result = stream_compare(nl, golden, waves)
    assert result.num_waves == 16


def test_full_throughput_one_wave_per_cycle():
    """Every wave gets an independent answer (gate-level pipelining)."""
    net = small_circuit()
    nl = pipeline_of(net, 4)
    # alternating all-ones / all-zeros: results must alternate too
    waves = [[1, 1, 1], [0, 0, 0]] * 8
    sim = PulseSimulator(nl)
    res = sim.run(waves)
    for w, vec in enumerate(waves):
        expect = simulate_words(net, [vec])[0]
        assert res.po_values[w] == expect


def test_t1_cell_streams_correctly():
    net = LogicNetwork()
    a, b, c = (net.add_pi(x) for x in "abc")
    cell = net.add_t1_cell(a, b, c)
    net.add_po(net.add_t1_tap(cell, Gate.T1_S), "s")
    net.add_po(net.add_t1_tap(cell, Gate.T1_C), "c")
    nl = pipeline_of(net, 4)
    waves = [
        [a_, b_, c_] for a_ in (0, 1) for b_ in (0, 1) for c_ in (0, 1)
    ]
    res = PulseSimulator(nl).run(waves)
    for w, (a_, b_, c_) in enumerate(waves):
        total = a_ + b_ + c_
        assert res.po_values[w] == [total % 2, 1 if total >= 2 else 0]


def test_hazard_detected_on_gap_over_n():
    nl = SFQNetlist(n_phases=2)
    a = nl.add_pi()
    g1 = nl.add_gate(Gate.NOT, [(a, "out")])
    nl.cells[g1].stage = 1
    g2 = nl.add_gate(Gate.NOT, [(g1, "out")])
    nl.cells[g2].stage = 6  # gap 5 > n=2: wave overlap
    nl.add_po((g2, "out"))
    sim = PulseSimulator(nl)
    with pytest.raises((HazardError, TimingError)):
        # input 0 -> the first NOT pulses every wave; those pulses pile up
        # in the second NOT's loop across clock windows
        sim.run([[0], [0], [0], [0]])


def test_missing_stage_rejected():
    nl = SFQNetlist(n_phases=2)
    a = nl.add_pi()
    nl.add_gate(Gate.NOT, [(a, "out")])
    with pytest.raises(SimulationError):
        PulseSimulator(nl)


def test_wrong_wave_width_rejected():
    net = small_circuit()
    nl = pipeline_of(net, 2)
    with pytest.raises(SimulationError):
        PulseSimulator(nl).run([[1, 0]])


def test_latency_horizon():
    net = small_circuit()
    nl = pipeline_of(net, 4)
    res = PulseSimulator(nl).run([[1, 1, 1]])
    assert res.horizon >= nl.max_stage()


def test_stream_compare_reports_mismatch():
    net = small_circuit()
    nl = pipeline_of(net, 4)

    def wrong_golden(row):
        out = simulate_words(net, [list(row)])[0]
        return [1 - out[0]] + out[1:]

    with pytest.raises(SimulationError):
        stream_compare(nl, wrong_golden, [[1, 0, 1]])


def test_flow_full_verification_end_to_end():
    """The flow's verify='full' path: mapped T1 pipeline vs logic model."""
    from repro.circuits import ripple_carry_adder

    net = ripple_carry_adder(6)
    res = run_flow(net, FlowConfig(n_phases=4, use_t1=True, verify="full"))
    assert res.verified is True
    assert res.t1_used >= 4
