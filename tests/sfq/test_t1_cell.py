"""Tests for the behavioural T1 cell (Fig. 1 semantics)."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import HazardError
from repro.sfq.t1_cell import (
    T1CellState,
    full_adder_cycle,
    simulate_pulse_train,
    waveform_ascii,
)


class TestStateMachine:
    def test_first_toggle_emits_qstar(self):
        cell = T1CellState()
        assert cell.pulse_t(0) == ["Q*"]
        assert cell.state == 1

    def test_second_toggle_emits_cstar(self):
        cell = T1CellState()
        cell.pulse_t(0)
        assert cell.pulse_t(1) == ["C*"]
        assert cell.state == 0

    def test_third_toggle_emits_qstar_again(self):
        cell = T1CellState()
        cell.pulse_t(0)
        cell.pulse_t(1)
        assert cell.pulse_t(2) == ["Q*"]
        assert cell.state == 1

    def test_reset_in_state1_emits_s(self):
        cell = T1CellState()
        cell.pulse_t(0)
        assert cell.pulse_r(1) == ["S"]
        assert cell.state == 0

    def test_reset_in_state0_rejected_silently(self):
        cell = T1CellState()
        assert cell.pulse_r(0) == []
        assert cell.state == 0

    def test_overlapping_t_pulses_raise(self):
        cell = T1CellState()
        cell.pulse_t(5)
        with pytest.raises(HazardError):
            cell.pulse_t(5)

    def test_t_pulses_at_distinct_times_fine(self):
        cell = T1CellState()
        cell.pulse_t(5)
        cell.pulse_t(6)
        cell.pulse_t(7)
        assert cell.toggles_since_readout == 3


class TestSynchronousReadout:
    @pytest.mark.parametrize(
        "a,b,c",
        list(itertools.product((0, 1), repeat=3)),
    )
    def test_full_adder_truth_table(self, a, b, c):
        s, carry, q = full_adder_cycle(a, b, c)
        total = a + b + c
        assert s == total % 2, "S must be XOR3"
        assert carry == (1 if total >= 2 else 0), "C must be MAJ3"
        assert q == (1 if total >= 1 else 0), "Q must be OR3"

    def test_readout_resets_for_next_cycle(self):
        cell = T1CellState()
        cell.pulse_t(0)
        cell.readout(1)
        out = cell.readout(2)
        assert out == {"S": 0, "C": 0, "Q": 0}


class TestFig1bReproduction:
    def test_figure_pulse_train(self):
        # Fig. 1b stimulus: first cycle only a; second a,b; third a,b,c;
        # each followed by a clock (R) pulse.
        events = [
            (0, "T"), (3, "R"),                      # a       -> S
            (4, "T"), (5, "T"), (7, "R"),            # a, b    -> C*, no S
            (8, "T"), (9, "T"), (10, "T"), (11, "R"),  # a, b, c -> S and C*
        ]
        history = simulate_pulse_train(events)
        s_times = [e.time for e in history if e.port == "S"]
        c_times = [e.time for e in history if e.port == "C*"]
        q_times = [e.time for e in history if e.port == "Q*"]
        assert s_times == [3, 11]
        assert c_times == [5, 9]
        assert q_times == [0, 4, 8, 10]

    def test_waveform_render(self):
        history = simulate_pulse_train([(0, "T"), (2, "R")])
        text = waveform_ascii(history)
        lines = text.splitlines()
        assert lines[0].startswith("  T |")
        assert any(line.startswith("  S") for line in lines)


@given(st.lists(st.sampled_from(["T", "R"]), min_size=0, max_size=30))
def test_state_invariant_parity(ops):
    """After any pulse sequence the loop state equals the parity of T
    pulses since the last state-clearing event (R or C* emission)."""
    cell = T1CellState()
    state = 0
    for i, op in enumerate(ops):
        if op == "T":
            cell.pulse_t(i)
            state ^= 1
        else:
            cell.pulse_r(i)
            state = 0
        assert cell.state == state
