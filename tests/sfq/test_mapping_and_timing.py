"""Tests for logic->SFQ mapping, decomposition, and the timing checker."""

import pytest

from repro.errors import MappingError
from repro.network import Gate, LogicNetwork, check_equivalence, simulate_exhaustive
from repro.sfq import (
    CellKind,
    SFQNetlist,
    check_timing,
    decompose_to_library,
    default_library,
    map_to_sfq,
)
from repro.network.cleanup import strash


def test_map_simple_gates():
    net = LogicNetwork()
    a, b = net.add_pi("a"), net.add_pi("b")
    g = net.add_and(a, b)
    net.add_po(g, "y")
    nl, sig = map_to_sfq(net, n_phases=4)
    assert nl.stats() == {
        "cells": 3, "gates": 1, "t1": 0, "dffs": 0, "pis": 2, "pos": 1
    }


def test_map_t1_block_and_taps():
    net = LogicNetwork()
    a, b, c = (net.add_pi() for _ in range(3))
    cell = net.add_t1_cell(a, b, c)
    s = net.add_t1_tap(cell, Gate.T1_S)
    cn = net.add_t1_tap(cell, Gate.T1_CN)
    net.add_po(s)
    net.add_po(cn)
    nl, _ = map_to_sfq(net)
    stats = nl.stats()
    assert stats["t1"] == 1
    assert stats["gates"] == 1  # the inverter for C*
    # the inverter is a NOT on the T1's C port
    inv = next(c for c in nl.gate_cells())
    assert inv.op is Gate.NOT
    assert inv.fanins[0][1] == "C"


def test_map_buf_is_free_wire():
    net = LogicNetwork()
    a = net.add_pi()
    buf = net.add_buf(a)
    g = net.add_not(buf)
    net.add_po(g)
    nl, _ = map_to_sfq(net)
    assert nl.stats()["gates"] == 1


def test_map_constant_fanin_rejected():
    net = LogicNetwork()
    a = net.add_pi()
    g = net.add_and(a, 1)
    net.add_po(g)
    with pytest.raises(MappingError):
        map_to_sfq(net)


def test_map_constant_po_becomes_const_cell():
    net = LogicNetwork()
    net.add_pi()
    net.add_po(0, "zero")
    net.add_po(1, "one")
    nl, _ = map_to_sfq(net)
    kinds = [nl.cells[sig[0]].kind for sig, _n in nl.pos]
    assert kinds == [CellKind.CONST0, CellKind.CONST1]


def test_map_dead_logic_skipped():
    net = LogicNetwork()
    a, b = net.add_pi(), net.add_pi()
    live = net.add_and(a, b)
    net.add_or(a, b)  # dead
    net.add_po(live)
    nl, _ = map_to_sfq(net)
    assert nl.stats()["gates"] == 1


def test_decompose_wide_gates():
    net = LogicNetwork()
    pis = [net.add_pi() for _ in range(7)]
    g = net.add_gate(Gate.AND, pis)
    net.add_po(g)
    out = decompose_to_library(net)
    lib = default_library()
    for node in out.nodes():
        if out.is_logic(node) and out.gates[node] is Gate.AND:
            assert len(out.fanins[node]) <= lib.max_arity(Gate.AND)
    assert check_equivalence(net, out).equivalent


def test_decompose_wide_inverted_gate():
    net = LogicNetwork()
    pis = [net.add_pi() for _ in range(6)]
    g = net.add_gate(Gate.NOR, pis)
    net.add_po(g)
    out = decompose_to_library(net)
    assert check_equivalence(net, out).equivalent


def test_decompose_preserves_t1():
    net = LogicNetwork()
    a, b, c = (net.add_pi() for _ in range(3))
    cell = net.add_t1_cell(a, b, c)
    net.add_po(net.add_t1_tap(cell, Gate.T1_Q))
    out = decompose_to_library(net)
    assert len(out.t1_cells()) == 1


class TestTimingChecker:
    def _staged_pair(self, gap, n=4):
        nl = SFQNetlist(n_phases=n)
        a = nl.add_pi()
        g1 = nl.add_gate(Gate.NOT, [(a, "out")])
        g1.__class__  # silence lint
        nl.cells[g1].stage = 1
        g2 = nl.add_gate(Gate.NOT, [(g1, "out")])
        nl.cells[g2].stage = 1 + gap
        nl.add_po((g2, "out"))
        return nl

    def test_clean_netlist_passes(self):
        report = check_timing(self._staged_pair(gap=3))
        assert report.ok

    def test_gap_over_n_flagged(self):
        report = check_timing(self._staged_pair(gap=5))
        assert not report.ok
        assert "gap 5 > n=4" in report.violations[0]

    def test_non_positive_gap_flagged(self):
        report = check_timing(self._staged_pair(gap=0))
        assert not report.ok

    def test_missing_stage_flagged(self):
        nl = SFQNetlist(n_phases=2)
        a = nl.add_pi()
        g = nl.add_gate(Gate.NOT, [(a, "out")])
        nl.add_po((g, "out"))
        report = check_timing(nl)
        assert any("has no stage" in v for v in report.violations)

    def test_t1_distinct_arrivals_enforced(self):
        nl = SFQNetlist(n_phases=4)
        a, b, c = nl.add_pi(), nl.add_pi(), nl.add_pi()
        # stagger PI phases so freshness holds, then collide two of them
        nl.cells[a].stage = 0
        nl.cells[b].stage = 0  # collision with a
        nl.cells[c].stage = 2
        t = nl.add_t1((a, "out"), (b, "out"), (c, "out"))
        nl.cells[t].stage = 4
        nl.add_po((t, "S"))
        report = check_timing(nl)
        assert any("not pairwise distinct" in v for v in report.violations)

    def test_pi_phase_in_epoch0_ok(self):
        nl = SFQNetlist(n_phases=4)
        a = nl.add_pi()
        nl.cells[a].stage = 3
        g = nl.add_gate(Gate.NOT, [(a, "out")])
        nl.cells[g].stage = 4
        nl.add_po((g, "out"))
        assert check_timing(nl).ok

    def test_pi_phase_outside_epoch0_flagged(self):
        nl = SFQNetlist(n_phases=4)
        a = nl.add_pi()
        nl.cells[a].stage = 4
        nl.add_po((a, "out"))
        report = check_timing(nl)
        assert any("outside" in v for v in report.violations)
