"""Tests for physical splitter-tree materialisation."""

import random

import pytest

from repro.circuits import ripple_carry_adder
from repro.errors import NetworkError
from repro.core import FlowConfig, run_flow
from repro.metrics import area_jj, measure
from repro.network import Gate
from repro.network.simulation import simulate_words
from repro.sfq import PulseSimulator, SFQNetlist, check_timing
from repro.sfq.netlist import CellKind
from repro.sfq.splitters import (
    materialize_splitters,
    resolve_clocked_driver,
    splitter_count,
)


def t1_flow_netlist(bits=6):
    net = ripple_carry_adder(bits)
    res = run_flow(net, FlowConfig(n_phases=4, use_t1=True, verify="none"))
    return net, res.netlist


class TestMaterialise:
    def test_count_matches_formula(self):
        _, nl = t1_flow_netlist()
        expected = measure(nl).num_splitters  # combinatorial f-1 count
        report = materialize_splitters(nl)
        assert report.splitters_added == expected
        assert splitter_count(nl) == expected

    def test_every_signal_single_consumer_after(self):
        _, nl = t1_flow_netlist()
        materialize_splitters(nl)
        from collections import Counter

        usage = Counter()
        for cell in nl.cells:
            for sig in cell.fanins:
                usage[sig] += 1
        for sig, _name in nl.pos:
            usage[sig] += 1
        assert all(count == 1 for count in usage.values()), usage.most_common(3)

    def test_area_unchanged(self):
        _, nl = t1_flow_netlist()
        before = area_jj(nl)
        materialize_splitters(nl)
        assert area_jj(nl) == before

    def test_timing_still_clean(self):
        _, nl = t1_flow_netlist()
        materialize_splitters(nl)
        assert check_timing(nl).ok

    def test_streaming_unchanged(self):
        net, nl = t1_flow_netlist(5)
        rng = random.Random(1)
        waves = [[rng.randint(0, 1) for _ in net.pis] for _ in range(8)]
        before = PulseSimulator(nl).run(waves).po_values
        materialize_splitters(nl)
        after = PulseSimulator(nl).run(waves).po_values
        assert before == after
        for w, vec in enumerate(waves):
            assert after[w] == simulate_words(net, [vec])[0]

    def test_double_materialise_rejected(self):
        _, nl = t1_flow_netlist(3)
        materialize_splitters(nl)
        with pytest.raises(NetworkError):
            materialize_splitters(nl)

    def test_tree_is_balanced(self):
        # a 1-to-8 fanout should have depth 3, not 7
        nl = SFQNetlist(n_phases=1)
        a = nl.add_pi()
        gates = [nl.add_gate(Gate.NOT, [(a, "out")]) for _ in range(8)]
        for g in gates:
            nl.cells[g].stage = 1
            nl.add_po((g, "out"))
        report = materialize_splitters(nl)
        assert report.splitters_added == 7
        assert report.max_tree_depth == 3

    def test_resolve_clocked_driver(self):
        nl = SFQNetlist(n_phases=1)
        a = nl.add_pi()
        g1 = nl.add_gate(Gate.NOT, [(a, "out")])
        g2 = nl.add_gate(Gate.NOT, [(a, "out")])
        nl.cells[g1].stage = nl.cells[g2].stage = 1
        nl.add_po((g1, "out"))
        nl.add_po((g2, "out"))
        materialize_splitters(nl)
        for cell in nl.cells:
            if cell.kind is CellKind.GATE:
                src = resolve_clocked_driver(nl, cell.fanins[0])
                assert src == (a, "out")


class TestFlowIntegration:
    def test_flow_option(self):
        net = ripple_carry_adder(5)
        res = run_flow(
            net,
            FlowConfig(n_phases=4, use_t1=True, verify="none",
                       materialize_splitters=True),
        )
        assert splitter_count(res.netlist) == res.metrics.num_splitters
        assert check_timing(res.netlist).ok

    def test_metrics_identical_with_and_without(self):
        net = ripple_carry_adder(5)
        plain = run_flow(net, FlowConfig(verify="none"))
        phys = run_flow(
            net, FlowConfig(verify="none", materialize_splitters=True)
        )
        assert plain.area_jj == phys.area_jj
        assert plain.num_dffs == phys.num_dffs
        assert plain.metrics.num_splitters == phys.metrics.num_splitters
