"""Tests for the clock distribution network model."""

import math

import pytest

from repro.circuits import ripple_carry_adder
from repro.core import FlowConfig, run_flow
from repro.sfq.clock_tree import (
    clock_overhead_ratio,
    plan_clock_network,
    total_area_with_clock,
)
from repro.metrics import area_jj


def staged_netlist(n=4, bits=8, use_t1=False):
    return run_flow(
        ripple_carry_adder(bits),
        FlowConfig(n_phases=n, use_t1=use_t1, verify="none"),
    ).netlist


class TestPlan:
    def test_every_clocked_cell_is_a_sink(self):
        nl = staged_netlist()
        plan = plan_clock_network(nl)
        clocked = sum(1 for c in nl.cells if c.clocked)
        assert plan.total_sinks == clocked

    def test_one_tree_per_phase(self):
        nl = staged_netlist(n=4)
        plan = plan_clock_network(nl)
        assert plan.n_phases == 4
        assert len(plan.trees) == 4
        assert sorted(t.phase for t in plan.trees) == [0, 1, 2, 3]

    def test_splitters_are_sinks_minus_one(self):
        nl = staged_netlist()
        for tree in plan_clock_network(nl).trees:
            assert tree.splitters == max(0, tree.sinks - 1)

    def test_depth_logarithmic(self):
        nl = staged_netlist()
        for tree in plan_clock_network(nl).trees:
            if tree.sinks > 1:
                assert tree.depth == math.ceil(math.log2(tree.sinks))

    def test_single_phase_one_tree(self):
        nl = staged_netlist(n=1)
        plan = plan_clock_network(nl)
        assert len(plan.trees) == 1
        assert plan.trees[0].sinks == plan.total_sinks

    def test_t1_cells_are_sinks(self):
        nl = staged_netlist(use_t1=True)
        plan = plan_clock_network(nl)
        clocked = sum(1 for c in nl.cells if c.clocked)
        assert plan.total_sinks == clocked
        assert any(c.kind.name == "T1" for c in nl.cells)


class TestAreas:
    def test_total_area_adds_clock(self):
        nl = staged_netlist()
        plan = plan_clock_network(nl)
        assert total_area_with_clock(nl) == area_jj(nl) + plan.area_jj()

    def test_overhead_ratio_in_unit_interval(self):
        nl = staged_netlist()
        r = clock_overhead_ratio(nl)
        assert 0.0 < r < 1.0

    def test_t1_reduces_logic_clock_sinks(self):
        """One T1 cell replaces two clocked gates, so the *logic* share of
        clock sinks shrinks (total sinks may still grow via staggering
        DFFs — they are counted too)."""

        def logic_sinks(nl):
            return sum(
                1 for c in nl.cells if c.clocked and c.kind.name in ("GATE", "T1")
            )

        base = staged_netlist(use_t1=False)
        t1 = staged_netlist(use_t1=True)
        assert logic_sinks(t1) < logic_sinks(base)
        # and DFF sinks are included in the plan's total
        plan = plan_clock_network(t1)
        assert plan.total_sinks == sum(1 for c in t1.cells if c.clocked)

    def test_summary(self):
        nl = staged_netlist()
        text = plan_clock_network(nl).summary()
        assert "clock network" in text
        assert "φ0" in text
