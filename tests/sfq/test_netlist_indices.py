"""Maintained SFQNetlist indices: epoch, consumer/PO index, structure view."""

import pytest

from repro.errors import NetworkError
from repro.network.gates import Gate
from repro.sfq.netlist import CellKind, OUT, SFQNetlist


def small_netlist():
    nl = SFQNetlist("idx", n_phases=4)
    a = (nl.add_pi("a"), OUT)
    b = (nl.add_pi("b"), OUT)
    g1 = (nl.add_gate(Gate.AND, [a, b]), OUT)
    g2 = (nl.add_gate(Gate.OR, [g1, a]), OUT)
    nl.add_po(g2, "y")
    return nl, a, b, g1, g2


class TestMaintainedIndices:
    def test_construction_maintains_consumers(self):
        nl, a, b, g1, g2 = small_netlist()
        assert sorted(nl.consumers_of(a)) == [g1[0], g2[0]]
        assert nl.consumers_of(g1) == (g2[0],)
        assert nl.po_slots_of(g2) == (0,)
        nl.check_indices()

    def test_replace_fanin_updates_index(self):
        nl, a, b, g1, g2 = small_netlist()
        nl.replace_fanin(g2[0], 0, b)  # g2 now consumes (b, a)
        assert nl.cells[g2[0]].fanins == (b, a)
        assert nl.consumers_of(g1) == ()
        assert g2[0] in nl.consumers_of(b)
        nl.check_indices()

    def test_replace_fanin_preserves_multiplicity(self):
        nl, a, b, g1, g2 = small_netlist()
        g3 = nl.add_gate(Gate.AND, [a, a])  # consumes a twice
        assert list(nl.consumers_of(a)).count(g3) == 2
        nl.replace_fanin(g3, 0, b)
        assert list(nl.consumers_of(a)).count(g3) == 1
        nl.check_indices()

    def test_replace_po_updates_index(self):
        nl, a, b, g1, g2 = small_netlist()
        nl.replace_po(0, g1)
        assert nl.pos[0][0] == g1
        assert nl.pos[0][1] == "y"  # name preserved
        assert nl.po_slots_of(g2) == ()
        assert nl.po_slots_of(g1) == (0,)
        nl.check_indices()

    def test_replace_fanin_validates(self):
        nl, a, b, g1, g2 = small_netlist()
        with pytest.raises(NetworkError):
            nl.replace_fanin(g2[0], 5, a)
        with pytest.raises(NetworkError):
            nl.replace_fanin(g2[0], 0, (g1[0], "no_such_port"))

    def test_consumers_dict_matches_scan(self):
        nl, a, b, g1, g2 = small_netlist()
        nl.replace_fanin(g2[0], 1, b)
        nl.add_po(g1, "z")
        want = {}
        for cell in nl.cells:
            for sig in cell.fanins:
                want.setdefault(sig, []).append(cell.index)
        for sig, _name in nl.pos:
            want.setdefault(sig, []).append(-1)
        got = nl.consumers()
        assert {k: sorted(v) for k, v in got.items()} == {
            k: sorted(v) for k, v in want.items()
        }


class TestEpochCaching:
    def test_epoch_bumps_on_structural_mutation(self):
        nl, a, b, g1, g2 = small_netlist()
        e0 = nl.epoch
        nl.add_dff(g1)
        assert nl.epoch > e0
        e1 = nl.epoch
        nl.replace_fanin(g2[0], 0, a)
        assert nl.epoch > e1

    def test_stage_writes_do_not_bump(self):
        nl, a, b, g1, g2 = small_netlist()
        e0 = nl.epoch
        nl.cells[g1[0]].stage = 3
        assert nl.epoch == e0

    def test_topological_cells_cached_per_epoch(self):
        nl, a, b, g1, g2 = small_netlist()
        o1 = nl.topological_cells()
        assert nl.topological_cells() is o1  # cached
        nl.add_dff(g2)
        o2 = nl.topological_cells()
        assert o2 is not o1
        assert len(o2) == len(o1) + 1

    def test_structure_cached_and_invalidated(self):
        nl, a, b, g1, g2 = small_netlist()
        s1 = nl.structure()
        assert nl.structure() is s1
        nl.replace_fanin(g2[0], 1, b)
        s2 = nl.structure()
        assert s2 is not s1
        # the old view is a snapshot: it still shows the old consumers
        assert g2[0] in s1.nets[a]
        assert g2[0] not in s2.nets.get(a, [])

    def test_structure_matches_seed_extraction(self):
        """The view's nets/t1/po fields equal a by-hand extraction."""
        nl = SFQNetlist("t1", n_phases=4)
        a = (nl.add_pi(), OUT)
        b = (nl.add_pi(), OUT)
        c = (nl.add_pi(), OUT)
        t = nl.add_t1(a, b, c)
        g = nl.add_gate(Gate.AND, [(t, "S"), a])
        nl.add_po((g, OUT))
        nl.add_po((t, "C"))
        st = nl.structure()
        assert st.t1_consumers[a[0]] == {t}
        assert st.nets[(t, "S")] == [g]
        assert (t, "C") in st.po_signals
        assert st.nets[(t, "C")] == []  # PO-only net present
        assert st.net_slots[(t, "S")] == [(g, 0)]
        assert st.po_slots[(g, OUT)] == [0]

    def test_flow_keeps_indices_consistent(self):
        from repro.circuits import build
        from repro.pipeline import Pipeline

        ctx = Pipeline.standard(
            n_phases=4, use_t1=True, verify="none",
            materialize_splitters=True,
        ).run(build("c6288", "ci"))
        ctx.netlist.check_indices()
        assert any(
            c.kind is CellKind.SPLITTER for c in ctx.netlist.cells
        )
