"""Tests for sweep and structural hashing."""

import pytest

from repro.network import (
    CONST0,
    CONST1,
    Gate,
    LogicNetwork,
    check_equivalence,
    simulate_exhaustive,
    strash,
    sweep,
)


def test_sweep_removes_dead_nodes():
    net = LogicNetwork()
    a, b = net.add_pi(), net.add_pi()
    live = net.add_and(a, b)
    dead = net.add_or(a, b)
    dead2 = net.add_not(dead)
    net.add_po(live)
    swept, mapping = sweep(net)
    assert swept.num_gates() == 1
    assert live in mapping
    assert check_equivalence(net, swept).equivalent


def test_sweep_keeps_unused_pis():
    net = LogicNetwork()
    a, b = net.add_pi("a"), net.add_pi("b")
    net.add_po(a)
    swept, _ = sweep(net)
    assert len(swept.pis) == 2
    assert swept.get_name(swept.pis[1]) == "b"


def test_sweep_preserves_t1_blocks():
    net = LogicNetwork()
    a, b, c = (net.add_pi() for _ in range(3))
    cell = net.add_t1_cell(a, b, c)
    s = net.add_t1_tap(cell, Gate.T1_S)
    q = net.add_t1_tap(cell, Gate.T1_Q)  # dead tap
    net.add_po(s)
    swept, _ = sweep(net)
    assert len(swept.t1_cells()) == 1
    # dead tap dropped
    cell_new = swept.t1_cells()[0]
    assert len(swept.t1_taps_of(cell_new)) == 1
    assert check_equivalence(net, swept).equivalent


def test_strash_merges_duplicates():
    net = LogicNetwork()
    a, b = net.add_pi(), net.add_pi()
    g1 = net.add_and(a, b)
    g2 = net.add_and(b, a)  # same gate, permuted fanins
    y = net.add_xor(g1, g2)  # x ^ x == 0
    net.add_po(y)
    hashed, _ = strash(net)
    tts = simulate_exhaustive(hashed)
    assert tts[0].bits == 0


def test_strash_constant_folding():
    net = LogicNetwork()
    a = net.add_pi()
    g1 = net.add_and(a, CONST1)   # == a
    g2 = net.add_or(g1, CONST0)   # == a
    g3 = net.add_xor(g2, CONST1)  # == !a
    g4 = net.add_not(g3)          # == a
    net.add_po(g4)
    hashed, _ = strash(net)
    assert hashed.num_gates() == 0  # collapses to the PI itself
    assert check_equivalence(net, hashed).equivalent


def test_strash_double_negation():
    net = LogicNetwork()
    a = net.add_pi()
    n1 = net.add_not(a)
    n2 = net.add_not(n1)
    n3 = net.add_not(n2)
    net.add_po(n3)
    hashed, _ = strash(net)
    assert hashed.num_gates() == 1  # single NOT remains
    assert check_equivalence(net, hashed).equivalent


def test_strash_maj_simplifications():
    net = LogicNetwork()
    a, b = net.add_pi(), net.add_pi()
    m1 = net.add_maj3(a, a, b)       # == a
    m2 = net.add_maj3(a, b, CONST0)  # == a & b
    m3 = net.add_maj3(a, b, CONST1)  # == a | b
    net.add_po(m1)
    net.add_po(m2)
    net.add_po(m3)
    hashed, _ = strash(net)
    assert check_equivalence(net, hashed).equivalent
    tts = simulate_exhaustive(hashed)
    assert tts[0].bits == 0b1010
    assert tts[1].bits == 0b1000
    assert tts[2].bits == 0b1110


def test_strash_xor_duplicate_cancellation():
    net = LogicNetwork()
    a, b = net.add_pi(), net.add_pi()
    y = net.add_xor(a, b, a)  # == b
    net.add_po(y)
    hashed, _ = strash(net)
    assert hashed.num_gates() == 0
    assert check_equivalence(net, hashed).equivalent


def test_strash_nand_nor_fold():
    net = LogicNetwork()
    a = net.add_pi()
    y1 = net.add_nand(a, CONST1)  # == !a
    y2 = net.add_nor(a, CONST0)   # == !a
    net.add_po(y1)
    net.add_po(y2)
    hashed, _ = strash(net)
    assert check_equivalence(net, hashed).equivalent
    # both POs collapse onto one NOT node
    assert hashed.pos[0] == hashed.pos[1]


def test_strash_idempotent():
    net = LogicNetwork()
    a, b, c = (net.add_pi() for _ in range(3))
    g = net.add_or(net.add_and(a, b), net.add_and(b, c))
    net.add_po(g)
    h1, _ = strash(net)
    h2, _ = strash(h1)
    assert h1.num_nodes() == h2.num_nodes()


def test_strash_preserves_t1():
    net = LogicNetwork()
    a, b, c = (net.add_pi() for _ in range(3))
    cell = net.add_t1_cell(a, b, c)
    s = net.add_t1_tap(cell, Gate.T1_S)
    cc = net.add_t1_tap(cell, Gate.T1_C)
    net.add_po(s)
    net.add_po(cc)
    hashed, _ = strash(net)
    assert len(hashed.t1_cells()) == 1
    assert check_equivalence(net, hashed).equivalent
