"""Tests for the associative tree-balancing pass."""

import random

import pytest

from repro.network import (
    Gate,
    LogicNetwork,
    check_equivalence,
    depth,
    exhaustive_equivalence,
)
from repro.network.balance import balance


def chain_network(gate, width):
    net = LogicNetwork("chain")
    pis = [net.add_pi(f"x{i}") for i in range(width)]
    acc = pis[0]
    for p in pis[1:]:
        acc = net.add_gate(gate, (acc, p))
    net.add_po(acc, "y")
    return net


@pytest.mark.parametrize("gate", [Gate.AND, Gate.OR, Gate.XOR])
def test_chain_becomes_logarithmic(gate):
    net = chain_network(gate, 12)
    assert depth(net) == 11
    out, _ = balance(net)
    assert depth(out) <= 3  # ternary tree over 12 leaves
    assert exhaustive_equivalence(net, out).equivalent


def test_mixed_gates_not_merged():
    net = LogicNetwork()
    a, b, c = (net.add_pi() for _ in range(3))
    t = net.add_and(a, b)
    y = net.add_or(t, c)  # OR over AND: not associative across kinds
    net.add_po(y)
    out, _ = balance(net)
    assert exhaustive_equivalence(net, out).equivalent


def test_multi_fanout_node_not_absorbed():
    net = LogicNetwork()
    pis = [net.add_pi() for _ in range(4)]
    t1 = net.add_and(pis[0], pis[1])
    t2 = net.add_and(t1, pis[2])
    t3 = net.add_and(t2, pis[3])
    net.add_po(t3, "y")
    net.add_po(t2, "tap")  # t2 observed: chain must stop there
    out, _ = balance(net)
    assert exhaustive_equivalence(net, out).equivalent


def test_uneven_leaf_levels_respected():
    # deep leaf should merge last (Huffman): the balanced tree depth is
    # deep-leaf level + 1
    net = LogicNetwork()
    pis = [net.add_pi() for _ in range(6)]
    deep = net.add_not(net.add_not(net.add_not(pis[0])))
    acc = deep
    for p in pis[1:]:
        acc = net.add_xor(acc, p)
    net.add_po(acc)
    out, _ = balance(net)
    assert depth(out) <= 5
    assert exhaustive_equivalence(net, out).equivalent


def test_depth_never_increases_random():
    from tests.test_flow_fuzz import random_network

    for seed in range(8):
        net = random_network(seed, num_gates=30)
        out, _ = balance(net)
        assert depth(out) <= depth(net), seed
        assert check_equivalence(net, out, complete=True).equivalent, seed


def test_balance_then_flow():
    """Balancing before the flow lowers DFF cost on chain-shaped logic."""
    from repro.core import FlowConfig, run_flow

    net = chain_network(Gate.XOR, 24)
    plain = run_flow(net, FlowConfig(n_phases=4, use_t1=False, verify="none"))
    balanced, _ = balance(net)
    opt = run_flow(balanced, FlowConfig(n_phases=4, use_t1=False, verify="none"))
    assert opt.depth_cycles < plain.depth_cycles
    assert opt.area_jj <= plain.area_jj


def test_t1_blocks_untouched():
    net = LogicNetwork()
    a, b, c = (net.add_pi() for _ in range(3))
    cell = net.add_t1_cell(a, b, c)
    s = net.add_t1_tap(cell, Gate.T1_S)
    chain = s
    for p in (a, b, c):
        chain = net.add_or(chain, p)
    net.add_po(chain)
    out, _ = balance(net)
    assert len(out.t1_cells()) == 1
    assert exhaustive_equivalence(net, out).equivalent
