"""Gate-semantics cross-checks and structural edge cases."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CycleError, GateArityError, NetworkError
from repro.network import (
    CONST0,
    CONST1,
    Gate,
    LogicNetwork,
    TruthTable,
    check_equivalence,
    eval_gate,
    simulate_exhaustive,
    strash,
    topological_order,
)
from repro.network.gates import GATE_SYMBOLS, MAX_VARIADIC_ARITY, check_arity


PY_SEMANTICS = {
    Gate.AND: lambda vals: all(vals),
    Gate.NAND: lambda vals: not all(vals),
    Gate.OR: lambda vals: any(vals),
    Gate.NOR: lambda vals: not any(vals),
    Gate.XOR: lambda vals: sum(vals) % 2 == 1,
    Gate.XNOR: lambda vals: sum(vals) % 2 == 0,
}


class TestEvalGate:
    @pytest.mark.parametrize("gate", list(PY_SEMANTICS))
    @pytest.mark.parametrize("arity", [2, 3, 4])
    def test_variadic_semantics(self, gate, arity):
        fn = PY_SEMANTICS[gate]
        for bits in itertools.product((0, 1), repeat=arity):
            got = eval_gate(gate, list(bits), 1)
            assert got == int(fn(bits)), (gate, bits)

    def test_bitparallel_consistency(self):
        # evaluating 8 rows at once == evaluating row by row
        for gate in PY_SEMANTICS:
            a, b, c = 0b10101100, 0b11001010, 0b11110000
            word = eval_gate(gate, [a, b, c], 0xFF)
            for row in range(8):
                bits = [(a >> row) & 1, (b >> row) & 1, (c >> row) & 1]
                assert (word >> row) & 1 == eval_gate(gate, bits, 1)

    def test_t1_cell_has_no_direct_eval(self):
        with pytest.raises(GateArityError):
            eval_gate(Gate.T1_CELL, [0, 1, 0], 1)

    def test_arity_table_complete(self):
        for gate in Gate:
            # every gate must have an arity rule and a symbol
            assert gate in GATE_SYMBOLS
            if gate in (Gate.AND, Gate.OR, Gate.XOR, Gate.NAND, Gate.NOR,
                        Gate.XNOR):
                check_arity(gate, 2)
                check_arity(gate, MAX_VARIADIC_ARITY)
                with pytest.raises(GateArityError):
                    check_arity(gate, 1)
                with pytest.raises(GateArityError):
                    check_arity(gate, MAX_VARIADIC_ARITY + 1)


class TestCycleDetection:
    def test_cycle_raises(self):
        net = LogicNetwork()
        a = net.add_pi()
        g1 = net.add_and(a, a)
        g2 = net.add_or(g1, a)
        # manually create a combinational loop
        net.fanins[g1] = (g2, a)
        with pytest.raises(CycleError):
            topological_order(net)

    def test_self_loop_raises(self):
        net = LogicNetwork()
        a = net.add_pi()
        g = net.add_and(a, a)
        net.fanins[g] = (g, a)
        with pytest.raises(CycleError):
            topological_order(net)


class TestStrashProperties:
    @pytest.mark.parametrize("seed", range(10))
    def test_strash_equivalence_random(self, seed):
        from tests.test_flow_fuzz import random_network

        net = random_network(seed, num_gates=40)
        hashed, _ = strash(net)
        assert check_equivalence(net, hashed, complete=True).equivalent
        assert hashed.num_gates() <= net.num_gates()

    def test_strash_idempotent_random(self):
        from tests.test_flow_fuzz import random_network

        for seed in range(5):
            net = random_network(seed + 500, num_gates=30)
            h1, _ = strash(net)
            h2, _ = strash(h1)
            assert h1.num_nodes() == h2.num_nodes(), seed


class TestWiderCuts:
    def test_k4_cut_tables(self):
        from repro.network import enumerate_cuts, node_function_on_leaves

        net = LogicNetwork()
        pis = [net.add_pi() for _ in range(4)]
        g1 = net.add_and(pis[0], pis[1])
        g2 = net.add_or(pis[2], pis[3])
        g3 = net.add_xor(g1, g2)
        net.add_po(g3)
        db = enumerate_cuts(net, k=4)
        cut = db.cut_with_leaves(g3, tuple(sorted(pis)))
        assert cut is not None
        assert cut.table == node_function_on_leaves(net, g3, cut.leaves)

    def test_k5_feasible(self):
        from repro.network import enumerate_cuts

        net = LogicNetwork()
        pis = [net.add_pi() for _ in range(5)]
        acc = pis[0]
        for p in pis[1:]:
            acc = net.add_xor(acc, p)
        net.add_po(acc)
        db = enumerate_cuts(net, k=5, cuts_per_node=16)
        cut = db.cut_with_leaves(acc, tuple(sorted(pis)))
        assert cut is not None
        assert cut.table.count_ones() == 16  # parity of 5 vars


class TestNpn4:
    def test_four_var_canonisation(self):
        from repro.network import npn_canon, npn_equivalent

        f = TruthTable.from_function(
            lambda a, b, c, d: (a and b) or (c and d), 4
        )
        g = f.permute((2, 3, 0, 1))  # swap the pairs
        assert npn_equivalent(f, g)
        canon, tf = npn_canon(f)
        assert tf.apply(f) == canon

    @given(bits=st.integers(0, 2**16 - 1))
    @settings(max_examples=20, deadline=None)
    def test_four_var_invariance(self, bits):
        from repro.network import npn_canon
        from repro.network.npn import _all_transforms

        tt = TruthTable(bits, 4)
        canon, _ = npn_canon(tt)
        tf = list(_all_transforms(4))[137]
        canon2, _ = npn_canon(tf.apply(tt))
        assert canon2 == canon
