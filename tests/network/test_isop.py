"""Tests for ISOP cube covers and SOP synthesis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import (
    LogicNetwork,
    TruthTable,
    maj3_tt,
    or3_tt,
    simulate_exhaustive,
    xor3_tt,
)
from repro.network.isop import Cube, cover_table, isop, isop_interval, synthesize_sop


class TestCube:
    def test_evaluate(self):
        c = Cube(pos=0b01, neg=0b10)  # x0 & !x1
        assert c.evaluate(0b01)
        assert not c.evaluate(0b11)
        assert not c.evaluate(0b00)

    def test_tautology_cube(self):
        assert Cube(0, 0).to_table(2).bits == 0b1111

    def test_literals(self):
        assert Cube(0b101, 0b010).literals() == 3


class TestIsop:
    @pytest.mark.parametrize(
        "tt_fn", [maj3_tt, or3_tt, xor3_tt, lambda: ~maj3_tt()]
    )
    def test_cover_equals_function(self, tt_fn):
        tt = tt_fn()
        cubes = isop(tt)
        assert cover_table(cubes, 3) == tt

    def test_maj3_is_three_cubes(self):
        assert len(isop(maj3_tt())) == 3

    def test_xor3_is_four_cubes(self):
        assert len(isop(xor3_tt())) == 4

    def test_constants(self):
        assert isop(TruthTable.const(False, 2)) == []
        cubes = isop(TruthTable.const(True, 2))
        assert len(cubes) == 1 and cubes[0] == Cube(0, 0)

    @given(bits=st.integers(0, 255))
    @settings(max_examples=120, deadline=None)
    def test_exact_cover_property(self, bits):
        tt = TruthTable(bits, 3)
        cubes = isop(tt)
        assert cover_table(cubes, 3) == tt

    @given(bits=st.integers(0, 2**16 - 1))
    @settings(max_examples=60, deadline=None)
    def test_four_var_cover_property(self, bits):
        tt = TruthTable(bits, 4)
        assert cover_table(isop(tt), 4) == tt

    @given(bits=st.integers(0, 255))
    @settings(max_examples=80, deadline=None)
    def test_irredundant(self, bits):
        """Dropping any cube must uncover part of the onset."""
        tt = TruthTable(bits, 3)
        cubes = isop(tt)
        for i in range(len(cubes)):
            rest = cubes[:i] + cubes[i + 1 :]
            assert cover_table(rest, 3) != tt or len(cubes) == 0

    @given(
        lower=st.integers(0, 255),
        extra=st.integers(0, 255),
    )
    @settings(max_examples=60, deadline=None)
    def test_interval_cover(self, lower, extra):
        l = TruthTable(lower, 3)
        u = TruthTable(lower | extra, 3)
        cubes = isop_interval(l, u)
        cover = cover_table(cubes, 3)
        assert (cover.bits & l.bits) == l.bits      # covers the onset
        assert (cover.bits & ~u.bits & 0xFF) == 0   # stays inside upper


class TestSynthesize:
    @given(bits=st.integers(0, 255))
    @settings(max_examples=60, deadline=None)
    def test_synthesized_network_matches(self, bits):
        tt = TruthTable(bits, 3)
        net = LogicNetwork()
        leaves = [net.add_pi() for _ in range(3)]
        root = synthesize_sop(net, leaves, isop(tt))
        net.add_po(root)
        assert simulate_exhaustive(net)[0] == tt
