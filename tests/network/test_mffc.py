"""Tests for MFFC computation."""

from repro.network import Gate, LogicNetwork, MffcComputer, mffc


def test_single_fanout_chain_absorbed():
    net = LogicNetwork()
    a, b = net.add_pi(), net.add_pi()
    g1 = net.add_and(a, b)
    g2 = net.add_not(g1)
    g3 = net.add_or(g2, a)
    net.add_po(g3)
    assert mffc(net, g3) == {g1, g2, g3}


def test_shared_node_not_absorbed():
    net = LogicNetwork()
    a, b = net.add_pi(), net.add_pi()
    g1 = net.add_and(a, b)  # shared
    g2 = net.add_not(g1)
    g3 = net.add_or(g1, g2)
    net.add_po(g3)
    net.add_po(g1)  # external use of g1
    assert mffc(net, g3) == {g2, g3}


def test_mffc_of_pi_is_empty():
    net = LogicNetwork()
    a = net.add_pi()
    net.add_po(a)
    assert mffc(net, a) == set()


def test_boundary_stops_absorption():
    net = LogicNetwork()
    a, b = net.add_pi(), net.add_pi()
    g1 = net.add_and(a, b)
    g2 = net.add_not(g1)
    net.add_po(g2)
    assert mffc(net, g2, boundary=[g1]) == {g2}


def test_refcounts_restored_after_query():
    net = LogicNetwork()
    a, b = net.add_pi(), net.add_pi()
    g1 = net.add_and(a, b)
    g2 = net.add_not(g1)
    net.add_po(g2)
    comp = MffcComputer(net)
    before = list(comp.refs)
    comp.mffc(g2)
    comp.mffc(g1)
    assert comp.refs == before


def test_union_no_double_count():
    # two roots sharing an internal node: union counts it once and
    # absorbs it (it dies when both roots die)
    net = LogicNetwork()
    a, b, c = (net.add_pi() for _ in range(3))
    shared = net.add_xor(a, b)
    r1 = net.add_and(shared, c)
    r2 = net.add_or(shared, c)
    net.add_po(r1)
    net.add_po(r2)
    comp = MffcComputer(net)
    # individually, neither absorbs 'shared' (two fanouts)
    assert comp.mffc(r1) == {r1}
    assert comp.mffc(r2) == {r2}
    union = comp.mffc_union([r1, r2])
    assert union == {shared, r1, r2}


def test_union_with_root_feeding_root():
    # r2 is a fanin of r1; both get replaced -> both in cone, walked once
    net = LogicNetwork()
    a, b, c = (net.add_pi() for _ in range(3))
    r2 = net.add_xor(a, b)
    r1 = net.add_xor(r2, c)
    net.add_po(r1)
    comp = MffcComputer(net)
    assert comp.mffc_union([r1, r2]) == {r1, r2}


def test_t1_blocks_are_atomic():
    net = LogicNetwork()
    a, b, c = (net.add_pi() for _ in range(3))
    cell = net.add_t1_cell(a, b, c)
    s = net.add_t1_tap(cell, Gate.T1_S)
    g = net.add_not(s)
    net.add_po(g)
    assert mffc(net, g) == {g}  # does not absorb tap or cell
    assert mffc(net, s) == set()
    assert mffc(net, cell) == set()
