"""LogicNetwork.structural_hash: canonical, order-independent, pinned.

The hash is the content-address of the service result cache, so the
contract matters operationally: equal across ``clone()`` and the id
renumbering of ``compact()``/``sweep``, different after any semantic
edit, identical between two independent builds of the same registry
circuit, and stable across processes (SHA-256 of canonical content, not
``hash()``).
"""

import pytest

from repro.circuits import TABLE1_ORDER, build, ripple_carry_adder
from repro.network.cleanup import strash, sweep
from repro.network.gates import Gate
from repro.network.logic_network import LogicNetwork


def _hex64(s: str) -> bool:
    return len(s) == 64 and all(c in "0123456789abcdef" for c in s)


class TestBasics:
    def test_is_hex_sha256(self):
        assert _hex64(ripple_carry_adder(4).structural_hash())

    def test_deterministic_rebuild(self):
        assert (
            ripple_carry_adder(8).structural_hash()
            == ripple_carry_adder(8).structural_hash()
        )

    def test_cached_call_is_stable(self):
        net = ripple_carry_adder(8)
        assert net.structural_hash() == net.structural_hash()

    def test_different_widths_differ(self):
        assert (
            ripple_carry_adder(4).structural_hash()
            != ripple_carry_adder(5).structural_hash()
        )


class TestInvariance:
    def test_clone_preserves(self):
        net = build("c6288", "ci")
        assert net.clone().structural_hash() == net.structural_hash()

    def test_compact_preserves(self):
        net = ripple_carry_adder(8)
        # create a dead node, then compact it away: live content unchanged
        net.add_and(net.pis[0], net.pis[1])
        h = net.structural_hash()
        net.compact()
        assert net.structural_hash() == h

    def test_sweep_rebuild_preserves(self):
        net = ripple_carry_adder(8)
        h = net.structural_hash()
        swept, _ = sweep(net)
        assert swept.structural_hash() == h

    def test_dead_node_does_not_contribute(self):
        net = ripple_carry_adder(6)
        h = net.structural_hash()
        net.add_xor(net.pis[0], net.pis[1])  # dead: no PO reaches it
        assert net.structural_hash() == h

    def test_commutative_fanin_order_ignored(self):
        a = LogicNetwork()
        x, y = a.add_pi(), a.add_pi()
        a.add_po(a.add_and(x, y))
        b = LogicNetwork()
        x, y = b.add_pi(), b.add_pi()
        b.add_po(b.add_and(y, x))
        assert a.structural_hash() == b.structural_hash()

    def test_names_do_not_contribute(self):
        a = ripple_carry_adder(4)
        b = ripple_carry_adder(4)
        b.set_name(b.pis[0], "renamed")
        assert a.structural_hash() == b.structural_hash()


class TestSemanticEdits:
    def test_gate_kind_changes_hash(self):
        a = LogicNetwork()
        x, y = a.add_pi(), a.add_pi()
        a.add_po(a.add_and(x, y))
        b = LogicNetwork()
        x, y = b.add_pi(), b.add_pi()
        b.add_po(b.add_or(x, y))
        assert a.structural_hash() != b.structural_hash()

    def test_rewiring_changes_hash(self):
        net = ripple_carry_adder(4)
        h = net.structural_hash()
        # rewire one PO's driver fanin to a different PI
        po = net.pos[0]
        old = net.fanins[po][0]
        new = net.pis[-1] if net.pis[-1] != old else net.pis[0]
        net.replace_fanin(po, old, new)
        assert net.structural_hash() != h

    def test_added_po_changes_hash(self):
        net = ripple_carry_adder(4)
        h = net.structural_hash()
        net.add_po(net.add_and(net.pis[0], net.pis[1]))
        assert net.structural_hash() != h

    def test_po_rebinding_changes_hash(self):
        net = ripple_carry_adder(4)
        h = net.structural_hash()
        net.substitute(net.pos[0], net.pis[0])
        assert net.structural_hash() != h

    def test_po_order_matters(self):
        a = LogicNetwork()
        x, y = a.add_pi(), a.add_pi()
        g1, g2 = a.add_and(x, y), a.add_xor(x, y)
        a.add_po(g1)
        a.add_po(g2)
        b = LogicNetwork()
        x, y = b.add_pi(), b.add_pi()
        g1, g2 = b.add_and(x, y), b.add_xor(x, y)
        b.add_po(g2)
        b.add_po(g1)
        assert a.structural_hash() != b.structural_hash()

    def test_noncommutative_fanin_order_matters(self):
        # a MUX built from gates is order-sensitive through the NOT leg
        a = LogicNetwork()
        s, d0, d1 = a.add_pi(), a.add_pi(), a.add_pi()
        a.add_po(a.add_mux(s, d0, d1))
        b = LogicNetwork()
        s, d0, d1 = b.add_pi(), b.add_pi(), b.add_pi()
        b.add_po(b.add_mux(s, d1, d0))
        assert a.structural_hash() != b.structural_hash()


class TestT1Blocks:
    def test_t1_cell_and_taps_hash(self):
        def make(tap):
            net = LogicNetwork()
            a, b, c = net.add_pi(), net.add_pi(), net.add_pi()
            cell = net.add_t1_cell(a, b, c)
            net.add_po(net.add_t1_tap(cell, tap))
            return net

        assert (
            make(Gate.T1_S).structural_hash()
            == make(Gate.T1_S).structural_hash()
        )
        assert (
            make(Gate.T1_S).structural_hash()
            != make(Gate.T1_C).structural_hash()
        )


@pytest.mark.parametrize("name", TABLE1_ORDER)
class TestRegistryPinned:
    def test_rebuild_and_clone_and_compact_agree(self, name):
        net = build(name, "ci")
        h = net.structural_hash()
        assert _hex64(h)
        assert build(name, "ci").structural_hash() == h
        clone = net.clone()
        assert clone.structural_hash() == h
        clone.compact()
        assert clone.structural_hash() == h

    def test_strash_preserves_when_structure_unchanged(self, name):
        # strash folds/dedupes; on an already-consed rebuild of itself the
        # result is a fixpoint, so hashing it twice must agree
        net = build(name, "ci")
        s1, _ = strash(net)
        s2, _ = strash(s1)
        assert s1.structural_hash() == s2.structural_hash()

    def test_presets_differ(self, name):
        assert (
            build(name, "ci").structural_hash()
            != build(name, "paper").structural_hash()
        )
