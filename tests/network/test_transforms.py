"""Tests for AIG normal form and ISOP refactoring."""

import pytest

from repro.circuits import ripple_carry_adder
from repro.network import (
    Gate,
    LogicNetwork,
    check_equivalence,
    depth,
    exhaustive_equivalence,
)
from repro.network.transforms import refactor, to_aig_form
from tests.test_flow_fuzz import random_network


class TestAigForm:
    def test_only_and2_and_not(self):
        net = ripple_carry_adder(4)
        aig = to_aig_form(net)
        for node in aig.nodes():
            g = aig.gates[node]
            if aig.is_logic(node):
                assert g in (Gate.AND, Gate.NOT), g
                if g is Gate.AND:
                    assert len(aig.fanins[node]) == 2

    def test_equivalent(self):
        net = ripple_carry_adder(5)
        assert check_equivalence(net, to_aig_form(net)).equivalent

    @pytest.mark.parametrize("seed", range(6))
    def test_random_equivalent(self, seed):
        net = random_network(seed, num_gates=30)
        aig = to_aig_form(net)
        assert check_equivalence(net, aig, complete=True).equivalent

    def test_t1_blocks_preserved(self):
        net = LogicNetwork()
        a, b, c = (net.add_pi() for _ in range(3))
        cell = net.add_t1_cell(a, b, c)
        net.add_po(net.add_t1_tap(cell, Gate.T1_S))
        aig = to_aig_form(net)
        assert len(aig.t1_cells()) == 1

    def test_gate_count_grows(self):
        # MAJ3/XOR3 cost several AND2s: AIG form is bigger, like the
        # benchmark suites the paper consumes
        net = ripple_carry_adder(8)
        aig = to_aig_form(net)
        assert aig.num_gates() > net.num_gates()


class TestRefactor:
    def test_redundant_logic_shrinks(self):
        # f = (a & b) | (a & !b) == a : refactoring must find it
        net = LogicNetwork()
        a, b = net.add_pi(), net.add_pi()
        t1 = net.add_and(a, b)
        t2 = net.add_and(a, net.add_not(b))
        net.add_po(net.add_or(t1, t2), "y")
        out, accepted = refactor(net)
        assert accepted >= 1
        assert out.num_gates() < net.num_gates()
        assert exhaustive_equivalence(net, out).equivalent

    def test_mux_structure_preserved_function(self):
        net = LogicNetwork()
        s, d0, d1 = (net.add_pi() for _ in range(3))
        net.add_po(net.add_mux(s, d0, d1))
        out, _ = refactor(net)
        assert exhaustive_equivalence(net, out).equivalent

    @pytest.mark.parametrize("seed", range(8))
    def test_random_networks_equivalent(self, seed):
        net = random_network(seed, num_gates=35)
        out, _ = refactor(net)
        assert check_equivalence(net, out, complete=True).equivalent, seed

    @pytest.mark.parametrize("seed", range(4))
    def test_aig_then_refactor_equivalent(self, seed):
        net = random_network(40 + seed, num_gates=30)
        aig = to_aig_form(net)
        out, _ = refactor(aig)
        assert check_equivalence(net, out, complete=True).equivalent, seed

    def test_never_grows(self):
        for seed in range(4):
            net = random_network(80 + seed, num_gates=30)
            out, _ = refactor(net)
            assert out.num_gates() <= net.num_gates(), seed

    def test_adder_through_aig_pipeline_flow(self):
        """The A5 scenario: generator -> AIG -> refactor -> T1 flow."""
        from repro.core import FlowConfig, run_flow

        net = ripple_carry_adder(6)
        aig = to_aig_form(net)
        opt, _ = refactor(aig)
        res = run_flow(opt, FlowConfig(n_phases=4, use_t1=True, verify="none"))
        assert res.t1_used > 0
        assert check_equivalence(net, res.logic_network).equivalent
