"""Randomized differential tests for the mapping-layer performance kernel.

Covers the three kernel pieces introduced by the mapping refactor:

* the precomputed NPN tables vs the retained enumerating oracle
  (complete k=3 space, sampled k=4, transform algebra laws);
* the allocation-light cut enumeration vs the seed per-candidate
  reference, plus the lazy ``cut_with_leaves`` index;
* the epoch-cached cut database: reuse on an unmutated network,
  invalidation by ``replace_fanin`` / ``substitute`` / ``compact`` /
  ``add_gate``.
"""

import random

import pytest

from repro.errors import TruthTableError
from repro.network import (
    Gate,
    LogicNetwork,
    TruthTable,
    cached_cut_database,
    enumerate_cuts,
    enumerate_cuts_reference,
    match_against,
    match_against_enum,
    npn_canon,
    npn_canon_enum,
    npn_class_members,
)
from repro.network.npn import NpnTransform, _all_transforms

GATE_POOL = [
    (Gate.NOT, 1),
    (Gate.AND, 2),
    (Gate.OR, 2),
    (Gate.XOR, 2),
    (Gate.NAND, 2),
    (Gate.NOR, 2),
    (Gate.XNOR, 2),
    (Gate.AND, 3),
    (Gate.OR, 3),
    (Gate.XOR, 3),
    (Gate.MAJ3, 3),
]


def random_dag(rng, n_pis=5, n_gates=60, n_pos=4):
    net = LogicNetwork("rand")
    for i in range(n_pis):
        net.add_pi(f"x{i}")
    for _ in range(n_gates):
        gate, arity = rng.choice(GATE_POOL)
        fins = [rng.randrange(2, net.num_nodes()) for _ in range(arity)]
        net.add_gate(gate, fins)
    gates = [n for n in net.nodes() if net.is_logic(n)]
    for i in range(n_pos):
        net.add_po(rng.choice(gates), f"y{i}")
    return net


def cuts_snapshot(db, n):
    return [
        [(c.leaves, c.table.bits, c.table.num_vars, c.signature) for c in db[node]]
        for node in range(n)
    ]


class TestNpnTables:
    def test_complete_k3_space_matches_oracle(self):
        for bits in range(256):
            tt = TruthTable(bits, 3)
            canon, tf = npn_canon(tt)
            canon_e, tf_e = npn_canon_enum(tt)
            assert canon == canon_e
            assert tf == tf_e  # same producing transform, not just class
            assert tf.apply(tt) == canon

    @pytest.mark.parametrize("k", [0, 1, 2])
    def test_small_arities_match_oracle(self, k):
        for bits in range(1 << (1 << k)):
            tt = TruthTable(bits, k)
            assert npn_canon(tt) == npn_canon_enum(tt)

    def test_sampled_k4_matches_oracle(self):
        rng = random.Random(42)
        for _ in range(25):
            tt = TruthTable(rng.getrandbits(16), 4)
            canon, tf = npn_canon(tt)
            canon_e, tf_e = npn_canon_enum(tt)
            assert (canon, tf) == (canon_e, tf_e)

    def test_rejects_large_tables(self):
        with pytest.raises(TruthTableError):
            npn_canon(TruthTable(0, 5))

    def test_transform_compose_and_inverse_laws(self):
        rng = random.Random(7)
        tfs = _all_transforms(3)
        for _ in range(200):
            f = TruthTable(rng.getrandbits(8), 3)
            t1 = tfs[rng.randrange(len(tfs))]
            t2 = tfs[rng.randrange(len(tfs))]
            assert t2.after(t1).apply(f) == t2.apply(t1.apply(f))
            assert t1.inverse().apply(t1.apply(f)) == f
            assert t1.apply_bits(f.bits, 3) == t1.apply(f).bits

    def test_match_against_agrees_with_oracle_on_existence(self):
        rng = random.Random(11)
        for _ in range(300):
            f = TruthTable(rng.getrandbits(8), 3)
            g = TruthTable(rng.getrandbits(8), 3)
            m = match_against(f, g)
            m_e = match_against_enum(f, g)
            assert (m is None) == (m_e is None)
            if m is not None:
                # the table-driven matcher may return a different (but
                # always valid) witness than the first-enumerated one
                assert m.apply(g) == f

    def test_class_members_inverse_map(self):
        from repro.network import maj3_tt, xor3_tt

        assert npn_class_members(xor3_tt()) == frozenset({0x96, 0x69})
        members = npn_class_members(maj3_tt())
        assert len(members) == 8
        canon = npn_canon(maj3_tt())[0]
        for bits in members:
            assert npn_canon(TruthTable(bits, 3))[0] == canon

    def test_t1_npn_classes_cover_match_table(self):
        from repro.core.t1_matching import t1_match_table, t1_npn_classes

        class_union = frozenset().union(
            *(members for _canon, members in t1_npn_classes().values())
        )
        for bits in t1_match_table():
            assert bits in class_union


class TestCutKernelDifferential:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_dags_match_reference(self, seed):
        rng = random.Random(seed)
        net = random_dag(rng)
        for k, cpn in ((3, 8), (3, 2), (4, 8)):
            db = enumerate_cuts(net, k=k, cuts_per_node=cpn)
            ref = enumerate_cuts_reference(net, k=k, cuts_per_node=cpn)
            assert cuts_snapshot(db, net.num_nodes()) == cuts_snapshot(
                ref, net.num_nodes()
            )

    def test_t1_blocks_match_reference(self):
        net = LogicNetwork()
        a, b, c = (net.add_pi() for _ in range(3))
        cell = net.add_t1_cell(a, b, c)
        s = net.add_t1_tap(cell, Gate.T1_S)
        q = net.add_t1_tap(cell, Gate.T1_Q)
        g = net.add_and(s, q)
        net.add_po(g)
        db = enumerate_cuts(net, k=3)
        ref = enumerate_cuts_reference(net, k=3)
        assert cuts_snapshot(db, net.num_nodes()) == cuts_snapshot(
            ref, net.num_nodes()
        )

    def test_cut_with_leaves_index(self):
        rng = random.Random(3)
        net = random_dag(rng)
        db = enumerate_cuts(net, k=3)
        for node in net.nodes():
            for cut in db[node]:
                assert db.cut_with_leaves(node, cut.leaves) is cut
            assert db.cut_with_leaves(node, (-1, -2, -3)) is None


class TestCachedCutDatabase:
    def build(self):
        net = LogicNetwork()
        a, b, c, d = (net.add_pi(f"x{i}") for i in range(4))
        g1 = net.add_and(a, b)
        g2 = net.add_or(g1, c)
        g3 = net.add_xor(g2, d)
        net.add_po(g3, "y")
        return net, (a, b, c, d, g1, g2, g3)

    def test_reuse_while_epoch_unchanged(self):
        net, _ = self.build()
        db1 = cached_cut_database(net)
        db2 = cached_cut_database(net)
        assert db1 is db2
        assert db1.epoch == net.epoch
        # different parameters get their own entry
        db3 = cached_cut_database(net, cuts_per_node=2)
        assert db3 is not db1
        assert cached_cut_database(net, cuts_per_node=2) is db3

    def test_invalidated_by_replace_fanin(self):
        net, (a, b, c, d, g1, g2, g3) = self.build()
        db1 = cached_cut_database(net)
        net.replace_fanin(g2, c, d)
        db2 = cached_cut_database(net)
        assert db2 is not db1
        assert db2.epoch == net.epoch
        assert cuts_snapshot(db2, net.num_nodes()) == cuts_snapshot(
            enumerate_cuts_reference(net), net.num_nodes()
        )

    def test_invalidated_by_substitute(self):
        net, (a, b, c, d, g1, g2, g3) = self.build()
        db1 = cached_cut_database(net)
        net.substitute(g1, a)
        db2 = cached_cut_database(net)
        assert db2 is not db1
        assert cuts_snapshot(db2, net.num_nodes()) == cuts_snapshot(
            enumerate_cuts_reference(net), net.num_nodes()
        )

    def test_invalidated_by_compact(self):
        net, (a, b, c, d, g1, g2, g3) = self.build()
        net.substitute(g1, a)  # leaves g1 dead
        db1 = cached_cut_database(net)
        net.compact()
        db2 = cached_cut_database(net)
        assert db2 is not db1
        assert db2.epoch == net.epoch
        assert len(db2.cuts) == net.num_nodes()

    def test_invalidated_by_add_gate(self):
        net, (_a, _b, _c, d, _g1, _g2, g3) = self.build()
        db1 = cached_cut_database(net)
        net.add_not(g3)
        db2 = cached_cut_database(net)
        assert db2 is not db1
        assert len(db2.cuts) == net.num_nodes()

    def test_clone_starts_cold(self):
        net, _ = self.build()
        db1 = cached_cut_database(net)
        clone = net.clone()
        db2 = cached_cut_database(clone)
        assert db2 is not db1
        assert cuts_snapshot(db2, clone.num_nodes()) == cuts_snapshot(
            db1, net.num_nodes()
        )
