"""Differential tests for the flat struct-of-arrays network core.

``repro.network.logic_network_reference.ReferenceLogicNetwork`` is the
seed tuple-layout kernel, retained verbatim as an oracle.  These tests
replay randomized mutator sequences (``add_pi`` / ``add_gate`` /
``add_po`` / ``substitute`` / ``replace_fanin`` / ``compact`` /
``clone``) against both kernels in lockstep and require the observable
state — gates, fanins, fanouts, PIs/POs, analyses, ``NodeMap`` events
and the structural hash — to stay bit-identical, plus
``check_invariants`` to hold on the flat side after every mutation
round.  A second battery covers ``add_gates_bulk`` (equivalence to the
per-call loop, batch-relative ids, atomicity) and the gate-grouped
simulation kernel against the per-node loop on both fuzzed networks and
the ``--scale`` synthetic generators.
"""

import random

import pytest

from repro.circuits.synthetic import (
    SYNTHETIC_BENCHMARKS,
    build_synthetic,
    lut_cascade,
    random_datapath,
    synthetic_names,
)
from repro.errors import NetworkError, ReproError
from repro.network import Gate, LogicNetwork, simulate, simulate_nodewise
from repro.network.logic_network_reference import ReferenceLogicNetwork
from repro.network.simulation import random_patterns

#: (gate, arity) mutator mix — every family plus variadic shapes
_GATE_MIX = (
    (Gate.AND, 2),
    (Gate.OR, 2),
    (Gate.XOR, 2),
    (Gate.NAND, 2),
    (Gate.NOR, 2),
    (Gate.XNOR, 2),
    (Gate.NOT, 1),
    (Gate.BUF, 1),
    (Gate.MAJ3, 3),
    (Gate.AND, 4),
    (Gate.OR, 3),
    (Gate.XOR, 5),
)


def assert_networks_identical(flat: LogicNetwork, ref: ReferenceLogicNetwork):
    """The full observable surface of both kernels, field by field."""
    assert flat.num_nodes() == ref.num_nodes()
    assert list(flat.gates) == list(ref.gates)
    assert list(flat.fanins) == list(ref.fanins)
    assert flat.pis == ref.pis
    assert flat.pos == ref.pos
    assert flat.po_names == ref.po_names
    for n in range(flat.num_nodes()):
        assert flat.gate(n) is ref.gate(n)
        assert flat.fanin(n) == ref.fanin(n)
        assert flat.fanout(n) == ref.fanout(n)
        assert flat.fanout_count(n) == ref.fanout_count(n)
    assert flat.compute_fanout_counts() == ref.compute_fanout_counts()
    assert flat.topological_order() == ref.topological_order()
    assert flat.levels() == ref.levels()
    assert flat.depth() == ref.depth()
    assert flat.live_nodes() == ref.live_nodes()
    assert flat.structural_hash() == ref.structural_hash()


def _random_fanins(rng, n_nodes, arity):
    return tuple(rng.randrange(n_nodes) for _ in range(arity))


def _seed_pair(hash_cons=False):
    flat = LogicNetwork("fuzz", hash_cons=hash_cons)
    ref = ReferenceLogicNetwork("fuzz", hash_cons=hash_cons)
    return flat, ref


def _fuzz_round(rng, flat, ref, n_ops, allow_t1=True):
    """One mutation round applied to both kernels in lockstep."""
    for _ in range(n_ops):
        op = rng.randrange(10 if allow_t1 else 9)
        n = flat.num_nodes()
        if op == 0 or n < 6:
            assert flat.add_pi() == ref.add_pi()
        elif op <= 5:
            gate, arity = _GATE_MIX[rng.randrange(len(_GATE_MIX))]
            fins = _random_fanins(rng, n, arity)
            assert flat.add_gate(gate, fins) == ref.add_gate(gate, fins)
        elif op == 6:
            node = rng.randrange(2, n)
            if flat.gate(node) is not Gate.T1_CELL:  # cells must be tapped
                assert flat.add_po(node) == ref.add_po(node)
        elif op == 7:
            # new < old keeps every edge pointing at a lower id, so the
            # fuzzed network can never become cyclic
            old = rng.randrange(1, n)
            new = rng.randrange(old)
            assert flat.substitute(old, new) == ref.substitute(old, new)
        elif op == 8:
            node = rng.randrange(2, n)
            fins = flat.fanin(node)
            if fins:
                old = fins[rng.randrange(len(fins))]
                new = rng.randrange(node)
                flat.replace_fanin(node, old, new)
                ref.replace_fanin(node, old, new)
        else:
            t1 = flat.add_t1_cell(*_random_fanins(rng, n, 3))
            t1r = ref.add_t1_cell(*flat.fanin(t1))
            assert t1 == t1r
            for tap in (Gate.T1_S, Gate.T1_C):
                assert flat.add_t1_tap(t1, tap) == ref.add_t1_tap(t1r, tap)


@pytest.mark.parametrize("seed", range(8))
def test_fuzz_mutators_match_reference(seed):
    rng = random.Random(f"flat-fuzz:{seed}")
    flat, ref = _seed_pair()
    for _round in range(6):
        _fuzz_round(rng, flat, ref, n_ops=25)
        flat.check_invariants()
        assert_networks_identical(flat, ref)
        if rng.randrange(3) == 0:
            if not flat.pos:  # keep something live before compacting
                sink = flat.num_nodes() - 1
                flat.add_po(sink)
                ref.add_po(sink)
            nm_flat = flat.compact()
            nm_ref = ref.compact()
            assert dict(nm_flat) == dict(nm_ref)
            flat.check_invariants()
            assert_networks_identical(flat, ref)
        if rng.randrange(4) == 0:
            flat = flat.clone()
            ref = ref.clone()
            flat.check_invariants()
            assert_networks_identical(flat, ref)


@pytest.mark.parametrize("seed", range(4))
def test_fuzz_hash_cons_matches_reference(seed):
    rng = random.Random(f"flat-fuzz-hc:{seed}")
    flat, ref = _seed_pair(hash_cons=True)
    for _round in range(4):
        for _ in range(30):
            n = flat.num_nodes()
            if rng.randrange(8) == 0 or n < 6:
                assert flat.add_pi() == ref.add_pi()
            else:
                gate, arity = _GATE_MIX[rng.randrange(len(_GATE_MIX))]
                # a narrow id range forces frequent strashing hits
                fins = tuple(
                    rng.randrange(max(2, n - 6), n) for _ in range(arity)
                )
                assert flat.add_gate(gate, fins) == ref.add_gate(gate, fins)
        flat.check_invariants()
        assert_networks_identical(flat, ref)


@pytest.mark.parametrize("seed", range(4))
def test_fuzz_simulation_grouped_matches_nodewise(seed):
    rng = random.Random(f"flat-fuzz-sim:{seed}")
    flat, ref = _seed_pair()
    # substitute/replace_fanin can rewire a tap off its cell, which has
    # no defined simulation semantics — keep T1 ops out of this battery
    _fuzz_round(rng, flat, ref, n_ops=120, allow_t1=False)
    width = 32
    pats = random_patterns(len(flat.pis), width, seed=seed)
    grouped = simulate(flat, pats, width)
    nodewise = simulate_nodewise(flat, pats, width)
    assert grouped == nodewise
    # the schedule-building fallback path works on the tuple kernel too
    assert simulate(ref, pats, width) == nodewise


class TestAddGatesBulk:
    def test_matches_per_call_loop(self):
        rng = random.Random("bulk-vs-loop")
        items = []
        base = 2 + 5
        for j in range(200):
            gate, arity = _GATE_MIX[rng.randrange(len(_GATE_MIX))]
            fins = _random_fanins(rng, base + j, arity)
            items.append((gate, fins))

        bulk = LogicNetwork("bulk")
        for i in range(5):
            bulk.add_pi(f"pi{i}")
        out = bulk.add_gates_bulk(items)
        assert out == list(range(base, base + len(items)))
        bulk.check_invariants()

        loop = LogicNetwork("loop")
        for i in range(5):
            loop.add_pi(f"pi{i}")
        for gate, fins in items:
            loop.add_gate(gate, fins)
        assert list(bulk.gates) == list(loop.gates)
        assert list(bulk.fanins) == list(loop.fanins)
        assert bulk.structural_hash() == loop.structural_hash()

    def test_batch_relative_ids_and_pis(self):
        net = LogicNetwork("rel")
        out = net.add_gates_bulk(
            [
                (Gate.PI, ()),
                (Gate.PI, ()),
                (Gate.AND, (2, 3)),  # batch items 0 and 1
                (Gate.NOT, (4,)),  # batch item 2
            ]
        )
        assert out == [2, 3, 4, 5]
        assert net.pis == (2, 3)
        assert net.fanin(4) == (2, 3)
        assert net.fanin(5) == (4,)
        net.check_invariants()

    def test_t1_cell_and_taps_in_batch(self):
        net = LogicNetwork("t1")
        a, b, c = net.add_pi(), net.add_pi(), net.add_pi()
        out = net.add_gates_bulk(
            [
                (Gate.T1_CELL, (a, b, c)),
                (Gate.T1_S, (5,)),
                (Gate.T1_C, (5,)),
            ]
        )
        assert net.t1_cells() == [out[0]]
        assert sorted(net.t1_taps_of(out[0])) == sorted(out[1:])
        net.check_invariants()

    @pytest.mark.parametrize(
        "bad",
        [
            # ids relative to the 5-node fixture net (batch base is 5)
            [(Gate.AND, (0, 99))],  # out of range
            [(Gate.AND, (0, 6)), (Gate.NOT, (2,))],  # forward batch ref
            [(Gate.NOT, (5,))],  # self ref
            [(Gate.AND, (0, -1))],  # negative
            [(Gate.MAJ3, (0, 1))],  # bad arity
            [(Gate.T1_S, (0,))],  # tap on a non-cell
        ],
    )
    def test_bad_batch_is_atomic(self, bad):
        net = LogicNetwork("atomic")
        a, b = net.add_pi(), net.add_pi()
        net.add_po(net.add_and(a, b))
        assert net.num_nodes() == 5
        before = net.structural_hash()
        epoch = net.epoch
        with pytest.raises(NetworkError):
            net.add_gates_bulk(bad)
        assert net.structural_hash() == before
        assert net.epoch == epoch
        net.check_invariants()

    def test_duplicate_fanins_keep_multiplicity(self):
        net = LogicNetwork("dups")
        out = net.add_gates_bulk(
            [
                (Gate.PI, ()),
                (Gate.AND, (2, 2)),  # duplicate batch-internal edge
            ]
        )
        net.add_po(out[1])
        assert net.fanout_count(out[0]) == 2
        net.check_invariants()

    def test_hash_cons_batch_folds(self):
        net = LogicNetwork("hc", hash_cons=True)
        a, b = net.add_pi(), net.add_pi()
        out = net.add_gates_bulk(
            [
                (Gate.AND, (a, b)),
                (Gate.AND, (a, b)),  # strash duplicate
                (Gate.AND, (4, 4)),  # folds to batch item 0's node
            ]
        )
        assert out[0] == out[1] == out[2]
        net.check_invariants()


class TestSyntheticGenerators:
    def test_names_and_registry(self):
        assert synthetic_names() == sorted(SYNTHETIC_BENCHMARKS)
        assert "datapath" in SYNTHETIC_BENCHMARKS
        assert "cascade" in SYNTHETIC_BENCHMARKS

    @pytest.mark.parametrize("name", sorted(SYNTHETIC_BENCHMARKS))
    def test_deterministic_and_live(self, name):
        a = build_synthetic(name, 4000, seed=3)
        b = build_synthetic(name, 4000, seed=3)
        assert a.structural_hash() == b.structural_hash()
        c = build_synthetic(name, 4000, seed=4)
        assert c.structural_hash() != a.structural_hash()
        a.check_invariants()
        # every sink is a PO, so the whole network is live
        assert a.live_nodes() >= set(range(2, a.num_nodes()))

    def test_datapath_scale_and_sim(self):
        net = random_datapath(n_nodes=3000, n_pis=16, seed=1)
        assert net.num_nodes() == 3000
        width = 16
        pats = random_patterns(len(net.pis), width, seed=9)
        assert simulate(net, pats, width) == simulate_nodewise(
            net, pats, width
        )

    def test_cascade_shape(self):
        net = lut_cascade(width=16, depth=10, k=4, seed=0)
        assert len(net.pis) == 16
        assert net.depth() == 10
        net.check_invariants()

    def test_rejects_bad_inputs(self):
        with pytest.raises(ReproError):
            build_synthetic("nope", 4000)
        with pytest.raises(ReproError):
            build_synthetic("datapath", 4)
        with pytest.raises(ReproError):
            random_datapath(n_nodes=100, n_pis=2)
