"""Unit and property tests for repro.network.truth_table."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TruthTableError
from repro.network.truth_table import (
    TruthTable,
    and3_tt,
    maj3_tt,
    or3_tt,
    var_mask,
    xor3_tt,
)


class TestConstruction:
    def test_const0(self):
        tt = TruthTable.const(False, 3)
        assert tt.bits == 0
        assert tt.num_vars == 3

    def test_const1(self):
        tt = TruthTable.const(True, 2)
        assert tt.bits == 0b1111

    def test_var_projection(self):
        a = TruthTable.var(0, 2)
        b = TruthTable.var(1, 2)
        assert a.bits == 0b1010
        assert b.bits == 0b1100

    def test_from_function_matches_values(self):
        tt = TruthTable.from_function(lambda a, b: a and not b, 2)
        for row in range(4):
            a, b = row & 1, (row >> 1) & 1
            assert tt.value(row) == (1 if a and not b else 0)

    def test_from_bits_roundtrip(self):
        tt = TruthTable.from_bits([0, 1, 1, 0])
        assert tt.num_vars == 2
        assert tt.bits == 0b0110

    def test_from_bits_rejects_bad_length(self):
        with pytest.raises(TruthTableError):
            TruthTable.from_bits([0, 1, 1])

    def test_rejects_oversized_bits(self):
        with pytest.raises(TruthTableError):
            TruthTable(1 << 4, 2)


class TestStandardFunctions:
    def test_xor3(self):
        assert xor3_tt().bits == 0x96

    def test_maj3(self):
        assert maj3_tt().bits == 0xE8

    def test_or3(self):
        assert or3_tt().bits == 0xFE

    def test_and3(self):
        assert and3_tt().bits == 0x80

    def test_all_symmetric(self):
        for tt in (xor3_tt(), maj3_tt(), or3_tt(), and3_tt()):
            for perm in itertools.permutations(range(3)):
                assert tt.permute(perm) == tt


class TestOperators:
    def test_invert(self):
        assert (~xor3_tt()).bits == 0x96 ^ 0xFF

    def test_and_or_xor(self):
        a = TruthTable.var(0, 3)
        b = TruthTable.var(1, 3)
        c = TruthTable.var(2, 3)
        assert (a ^ b ^ c) == xor3_tt()
        assert ((a & b) | (a & c) | (b & c)) == maj3_tt()
        assert (a | b | c) == or3_tt()

    def test_arity_mismatch_raises(self):
        with pytest.raises(TruthTableError):
            TruthTable.var(0, 2) & TruthTable.var(0, 3)


class TestTransforms:
    def test_negate_var_on_maj(self):
        # MAJ(!a, b, c) on rows where a=1 equals MAJ(0,b,c)=b&c
        tt = maj3_tt().negate_var(0)
        for row in range(8):
            a, b, c = row & 1, (row >> 1) & 1, (row >> 2) & 1
            expect = 1 if ((1 - a) + b + c) >= 2 else 0
            assert tt.value(row) == expect

    def test_negate_vars_all_on_maj_is_complement(self):
        # MAJ(!a,!b,!c) == !MAJ(a,b,c)
        assert maj3_tt().negate_vars(0b111) == ~maj3_tt()

    def test_double_negation_identity(self):
        tt = maj3_tt()
        assert tt.negate_var(1).negate_var(1) == tt

    def test_permute_identity(self):
        assert xor3_tt().permute((0, 1, 2)) == xor3_tt()

    def test_permute_asymmetric(self):
        # f = a & !b : swapping a,b gives b & !a
        f = TruthTable.from_function(lambda a, b: a and not b, 2)
        g = f.permute((1, 0))
        expect = TruthTable.from_function(lambda a, b: b and not a, 2)
        assert g == expect

    def test_extend_preserves_function(self):
        f = TruthTable.from_function(lambda a, b: a ^ b, 2)
        g = f.extend(4)
        for row in range(16):
            assert g.value(row) == f.value(row & 3)

    def test_remap(self):
        # xor(a, b) placed on positions (2, 0) of a 3-var table
        f = TruthTable.from_function(lambda a, b: a ^ b, 2)
        g = f.remap((2, 0), 3)
        for row in range(8):
            a = (row >> 2) & 1
            b = row & 1
            assert g.value(row) == (a ^ b)

    def test_support_and_shrink(self):
        f = TruthTable.from_function(lambda a, b, c: a ^ c, 3)
        assert f.support() == (0, 2)
        s = f.shrink_to_support()
        assert s.num_vars == 2
        assert s == TruthTable.from_function(lambda a, b: a ^ b, 2)

    def test_depends_on(self):
        f = TruthTable.from_function(lambda a, b, c: b, 3)
        assert not f.depends_on(0)
        assert f.depends_on(1)
        assert not f.depends_on(2)


@given(bits=st.integers(min_value=0, max_value=255), var=st.integers(0, 2))
def test_negate_var_involution(bits, var):
    tt = TruthTable(bits, 3)
    assert tt.negate_var(var).negate_var(var) == tt


@given(
    bits=st.integers(min_value=0, max_value=255),
    perm=st.permutations(list(range(3))),
)
def test_permute_roundtrip(bits, perm):
    tt = TruthTable(bits, 3)
    inverse = [0] * 3
    for i, p in enumerate(perm):
        inverse[p] = i
    assert tt.permute(tuple(perm)).permute(tuple(inverse)) == tt


@given(bits=st.integers(min_value=0, max_value=255))
def test_shrink_preserves_semantics(bits):
    tt = TruthTable(bits, 3)
    small = tt.shrink_to_support()
    sup = tt.support()
    for row in range(8):
        small_row = 0
        for i, v in enumerate(sup):
            if (row >> v) & 1:
                small_row |= 1 << i
        assert tt.value(row) == small.value(small_row)


@given(bits=st.integers(min_value=0, max_value=255), pol=st.integers(0, 7))
def test_negate_vars_parity_on_xor(bits, pol):
    # negating inputs of XOR3 flips output iff an odd number are negated
    tt = xor3_tt().negate_vars(pol)
    ones = bin(pol).count("1")
    assert tt == (~xor3_tt() if ones % 2 else xor3_tt())
