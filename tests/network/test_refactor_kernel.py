"""Differential + unit tests for the priority-queue rewrite kernel.

The kernel contract (PR 6): ``refactor(priority="topo")`` is
bit-identical to the seed sweep ``refactor_reference`` — same accepted
count, same strashed result — on any input; multi-pass refactoring with
incremental cut/MFFC carry-over equals iterating the reference; the
max-gain order is CEC-equivalent.  The incremental analyses
(``CutDatabase.remap``, ``MffcComputer.carry_over``) are additionally
pinned against from-scratch recomputation.
"""

import random

import pytest

from repro.circuits import ripple_carry_adder
from repro.network import (
    LogicNetwork,
    MffcComputer,
    TruthTable,
    check_equivalence,
    enumerate_cuts,
    exhaustive_equivalence,
    isop,
    refactor,
    refactor_reference,
    sop_gate_count,
    strash,
    structural_diff,
    synthesize_sop,
    to_aig_form,
)
from repro.network.isop import cached_sop, clear_sop_cache, sop_cache_info
from tests.test_flow_fuzz import random_network


def fingerprint(net):
    """Exact structural identity (ids, gates, fanins, interface)."""
    return (
        tuple(net.gates),
        tuple(tuple(f) for f in net.fanins),
        tuple(net.pis),
        tuple(net.pos),
    )


def nested_redundancy_net():
    """x = (a&b)|(a&~b) == a, then y rebuilt the same way on top of x.

    Refactoring x claims its MFFC, which overlaps every candidate cut of
    y — the deterministic heap-invalidation scenario.
    """
    net = LogicNetwork("nested")
    a, b, c = (net.add_pi(s) for s in "abc")
    x = net.add_or(net.add_and(a, b), net.add_and(a, net.add_not(b)))
    y = net.add_or(net.add_and(x, c), net.add_and(x, net.add_not(c)))
    net.add_po(y, "y")
    return net


class TestDifferential:
    @pytest.mark.parametrize("seed", range(12))
    def test_topo_priority_bit_identical_to_reference(self, seed):
        net = random_network(seed, num_gates=45)
        out_k, n_k = refactor(net)
        out_r, n_r = refactor_reference(net)
        assert n_k == n_r
        assert fingerprint(out_k) == fingerprint(out_r)
        assert check_equivalence(net, out_k, complete=True).equivalent

    @pytest.mark.parametrize("seed", range(4))
    def test_aig_inputs_bit_identical(self, seed):
        aig = to_aig_form(random_network(20 + seed, num_gates=30))
        out_k, n_k = refactor(aig)
        out_r, n_r = refactor_reference(aig)
        assert n_k == n_r
        assert fingerprint(out_k) == fingerprint(out_r)

    @pytest.mark.parametrize("seed", range(6))
    def test_multi_pass_equals_iterated_reference(self, seed):
        """passes=N with remapped cuts + carried cones == N reference runs."""
        net = random_network(50 + seed, num_gates=45)
        out_k, n_k = refactor(net, passes=3)
        cur, total = net, 0
        for _ in range(3):
            cur, accepted = refactor_reference(cur)
            total += accepted
            if accepted == 0:
                break
        assert n_k == total
        assert fingerprint(out_k) == fingerprint(cur)

    @pytest.mark.parametrize("seed", range(6))
    def test_gain_priority_equivalent_and_never_grows(self, seed):
        net = random_network(80 + seed, num_gates=40)
        out, _ = refactor(net, priority="gain")
        assert out.num_gates() <= net.num_gates()
        assert check_equivalence(net, out, complete=True).equivalent


class TestHeapInvalidation:
    def test_acceptance_blocks_queued_candidate(self):
        """x's acceptance claims nodes that invalidate y's queued cuts."""
        net = nested_redundancy_net()
        stats = {}
        out, accepted = refactor(net, stats=stats)
        _ref, ref_accepted = refactor_reference(net)
        assert accepted == ref_accepted == 1
        # y was scored with positive gain, but by pop time every one of
        # its candidates hit the claimed set (leaf or cone overlap) and
        # the entry was dropped instead of applied
        assert stats["scored_nodes"] >= 2
        assert stats["dropped_blocked"] >= 1
        assert exhaustive_equivalence(net, out).equivalent

    def test_gain_order_drops_claimed_node(self):
        """Max-gain pops y first; x is then claimed inside y's cone."""
        net = nested_redundancy_net()
        stats = {}
        out, accepted = refactor(net, priority="gain", stats=stats)
        assert accepted == 1
        assert stats["dropped_claimed"] >= 1
        assert exhaustive_equivalence(net, out).equivalent
        # the single gain-ordered rewrite collapses both layers at once
        assert out.num_gates() == 0

    def test_stats_accumulate_across_passes(self):
        net = random_network(7, num_gates=40)
        stats = {}
        refactor(net, passes=3, stats=stats)
        assert stats["passes_run"] >= 2
        assert stats["cuts_reused"] + stats["cuts_rebuilt"] > 0


def _rewrite_once(net, k=4):
    """One accepted-style rewrite on a clone + strash, as the kernel does.

    Returns ``(swept, node_map restricted to net's ids)`` — the inputs
    the incremental analyses are driven with between passes.
    """
    db = enumerate_cuts(net, k=k, cuts_per_node=8)
    work = net.clone()
    target = None
    for node in reversed(net.topological_order()):
        if not net.is_logic(node):
            continue
        for cut in db[node]:
            if len(cut.leaves) >= 2 and node not in cut.leaves:
                target = (node, cut)
                break
        if target:
            break
    assert target is not None
    node, cut = target
    new_root = synthesize_sop(work, list(cut.leaves), isop(cut.table))
    work.substitute(node, new_root)
    swept, nm = strash(work)
    return db, swept, {o: m for o, m in nm.items() if o < net.num_nodes()}


class TestIncrementalAnalyses:
    @pytest.mark.parametrize("seed", range(6))
    def test_cut_remap_matches_fresh_enumeration(self, seed):
        net = random_network(seed, num_gates=40)
        db, swept, nm = _rewrite_once(net)
        remapped = db.remap(net, swept, nm)
        fresh = enumerate_cuts(swept, k=4, cuts_per_node=8)
        for a, b in zip(remapped.cuts, fresh.cuts):
            assert [(c.leaves, c.table.bits) for c in a] == [
                (c.leaves, c.table.bits) for c in b
            ]
        assert remapped.full_counts == fresh.full_counts
        n_logic = sum(1 for n in swept.nodes() if swept.is_logic(n))
        assert remapped.remap_reused + remapped.remap_rebuilt == n_logic

    def test_cut_remap_reuses_clean_region(self):
        # a wide adder keeps most of the network untouched by one rewrite
        net = ripple_carry_adder(8)
        db, swept, nm = _rewrite_once(net)
        remapped = db.remap(net, swept, nm)
        assert remapped.remap_reused > remapped.remap_rebuilt

    @pytest.mark.parametrize("seed", range(6))
    def test_mffc_carry_over_matches_fresh(self, seed):
        net = random_network(30 + seed, num_gates=40)
        db, swept, nm = _rewrite_once(net)
        warm = MffcComputer(net)
        for node in net.nodes():
            for cut in db[node]:
                if len(cut.leaves) >= 2 and node not in cut.leaves:
                    warm.mffc(node, boundary=cut.leaves)
        dirty = structural_diff(net, swept, nm)
        carried = warm.carry_over(swept, nm, dirty)
        fresh = MffcComputer(swept)
        new_db = enumerate_cuts(swept, k=4, cuts_per_node=8)
        for node in swept.nodes():
            for cut in new_db[node]:
                if len(cut.leaves) >= 2 and node not in cut.leaves:
                    assert carried.mffc(node, boundary=cut.leaves) == fresh.mffc(
                        node, boundary=cut.leaves
                    ), (seed, node, cut.leaves)

    def test_structural_diff_flags_only_changed_fanout_region(self):
        net = ripple_carry_adder(6)
        _db, swept, nm = _rewrite_once(net)
        dirty = structural_diff(net, swept, nm)
        assert dirty  # the rewrite touched something
        assert len(dirty) < swept.num_nodes()  # ...but not everything


class TestMemoisedResynthesis:
    def test_cached_sop_matches_isop(self):
        rng = random.Random(0)
        clear_sop_cache()
        for _ in range(50):
            nv = rng.randint(1, 4)
            tt = TruthTable(rng.getrandbits(1 << nv), nv)
            cubes, cost = cached_sop(tt)
            assert list(cubes) == isop(tt)
            assert cost == sop_gate_count(cubes)
        before = sop_cache_info().hits
        cached_sop(TruthTable(0b0110, 2))
        cached_sop(TruthTable(0b0110, 2))
        assert sop_cache_info().hits > before

    def test_sop_gate_count_equals_synthesized_gate_count(self):
        """The cost proxy is exact for the network synthesize_sop builds."""
        rng = random.Random(1)
        for _ in range(40):
            nv = rng.randint(1, 4)
            tt = TruthTable(rng.getrandbits(1 << nv), nv)
            cubes = isop(tt)
            net = LogicNetwork("sop")
            pis = [net.add_pi() for _ in range(nv)]
            before = net.num_nodes()
            synthesize_sop(net, pis, cubes)
            assert net.num_nodes() - before == sop_gate_count(cubes), tt
