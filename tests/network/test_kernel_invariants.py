"""Randomized differential tests for the incremental network kernel.

The kernel maintains fanout/ref-count indices and per-epoch caches for
topological order and levels across every mutation.  These tests build
random DAGs, apply random mutation sequences (``add_gate``,
``substitute``, ``replace_fanin``) and whole-network passes (``sweep``,
``strash``, ``balance``, ``compact``), and after every step assert that

* the maintained indices match a from-scratch recomputation
  (:meth:`LogicNetwork.check_invariants`),
* cached topological order / levels match the reference algorithms,
* simulation semantics and PO names survive the semantics-preserving
  passes, node for node through the emitted :class:`NodeMap`.
"""

import random

import pytest

from repro.network import (
    CONST0,
    CONST1,
    Gate,
    LogicNetwork,
    NodeMap,
    balance,
    exhaustive_pi_patterns,
    simulate,
    simulate_exhaustive,
    strash,
    sweep,
    transitive_fanout,
)

GATE_POOL = [
    (Gate.NOT, 1),
    (Gate.BUF, 1),
    (Gate.AND, 2),
    (Gate.OR, 2),
    (Gate.XOR, 2),
    (Gate.NAND, 2),
    (Gate.NOR, 2),
    (Gate.XNOR, 2),
    (Gate.AND, 3),
    (Gate.OR, 3),
    (Gate.MAJ3, 3),
]


def random_dag(rng: random.Random, n_pis: int = 5, n_gates: int = 40,
               n_pos: int = 4, hash_cons: bool = False) -> LogicNetwork:
    net = LogicNetwork(f"rand{rng.randint(0, 1 << 30)}", hash_cons=hash_cons)
    for i in range(n_pis):
        net.add_pi(f"x{i}")
    for _ in range(n_gates):
        gate, arity = rng.choice(GATE_POOL)
        fins = [rng.randrange(net.num_nodes()) for _ in range(arity)]
        net.add_gate(gate, fins)
    candidates = [n for n in net.nodes() if net.gates[n] is not Gate.PI]
    for i in range(n_pos):
        net.add_po(rng.choice(candidates), f"y{i}")
    return net


def reference_levels(net: LogicNetwork):
    """The seed levels algorithm, independent of the kernel cache."""
    from repro.network.gates import is_t1_tap

    order = reference_topo(net)
    lvl = [0] * net.num_nodes()
    for node in order:
        fins = net.fanins[node]
        if not fins:
            lvl[node] = 0
        elif is_t1_tap(net.gates[node]):
            lvl[node] = lvl[fins[0]]
        else:
            lvl[node] = 1 + max(lvl[f] for f in fins)
    return lvl


def reference_topo(net: LogicNetwork):
    """The seed Kahn traversal, recomputing fanouts by a full scan."""
    n = net.num_nodes()
    fanouts = [[] for _ in range(n)]
    for node, fins in enumerate(net.fanins):
        for f in fins:
            fanouts[f].append(node)
    indeg = [len(fins) for fins in net.fanins]
    queue = [node for node in range(n) if indeg[node] == 0]
    order = []
    head = 0
    while head < len(queue):
        u = queue[head]
        head += 1
        order.append(u)
        for v in fanouts[u]:
            indeg[v] -= 1
            if indeg[v] == 0:
                queue.append(v)
    assert len(order) == n
    return order


def assert_kernel_consistent(net: LogicNetwork):
    net.check_invariants()
    assert net.topological_order() == reference_topo(net)
    assert net.levels() == reference_levels(net)
    # maintained counts == brute-force counts
    brute = [0] * net.num_nodes()
    for _node, fins in enumerate(net.fanins):
        for f in fins:
            brute[f] += 1
    for po in net.pos:
        brute[po] += 1
    assert net.compute_fanout_counts() == brute
    for node in net.nodes():
        assert net.fanout_count(node) == brute[node]


class TestMutationInvariants:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_mutation_sequences(self, seed):
        rng = random.Random(1000 + seed)
        net = random_dag(rng)
        assert_kernel_consistent(net)
        for _step in range(30):
            op = rng.choice(["add", "substitute", "replace_fanin", "po"])
            if op == "add":
                gate, arity = rng.choice(GATE_POOL)
                fins = [rng.randrange(net.num_nodes()) for _ in range(arity)]
                net.add_gate(gate, fins)
            elif op == "substitute":
                old = rng.randrange(net.num_nodes())
                downstream = transitive_fanout(net, [old])
                options = [n for n in net.nodes() if n not in downstream]
                if not options:
                    continue
                new = rng.choice(options)
                expected = sum(
                    fins.count(old) for fins in net.fanins
                ) + list(net.pos).count(old)
                if old == new:
                    expected = 0
                assert net.substitute(old, new) == expected
                if old != new:
                    assert net.fanout_count(old) == 0
            elif op == "replace_fanin":
                gated = [
                    n for n in net.nodes() if net.fanins[n]
                ]
                node = rng.choice(gated)
                old = rng.choice(net.fanins[node])
                downstream = transitive_fanout(net, [node])
                options = [n for n in net.nodes() if n not in downstream]
                if not options:
                    continue
                net.replace_fanin(node, old, rng.choice(options))
            else:
                target = rng.randrange(net.num_nodes())
                if net.gates[target] is not Gate.T1_CELL:
                    net.add_po(target, None)
            assert_kernel_consistent(net)

    def test_substitute_is_fanout_local(self):
        # the returned count equals the reference scan's, and the old
        # node's maintained fanout empties out
        net = LogicNetwork()
        a, b = net.add_pi("a"), net.add_pi("b")
        g = net.add_and(a, b)
        h = net.add_or(g, g)
        net.add_po(g)
        net.add_po(h)
        assert net.substitute(g, a) == 3  # two fanin slots + one PO
        assert net.fanout_count(g) == 0
        assert net.fanin(h) == (a, a)
        assert_kernel_consistent(net)

    def test_epoch_caching_identity(self):
        rng = random.Random(7)
        net = random_dag(rng)
        first = net.topological_order()
        assert net.topological_order() is first  # cache hit, no recompute
        net.add_and(net.pis[0], net.pis[1])
        second = net.topological_order()
        assert second is not first
        assert_kernel_consistent(net)


class TestCompactAndSweep:
    @pytest.mark.parametrize("seed", range(8))
    def test_sweep_preserves_node_semantics(self, seed):
        rng = random.Random(2000 + seed)
        net = random_dag(rng)
        k = len(net.pis)
        patterns = exhaustive_pi_patterns(k)
        before = simulate(net, patterns, 1 << k)
        swept, remap = sweep(net)
        assert isinstance(remap, NodeMap)
        assert_kernel_consistent(swept)
        assert swept.po_names == net.po_names
        assert [swept.get_name(pi) for pi in swept.pis] == [
            net.get_name(pi) for pi in net.pis
        ]
        after = simulate(swept, patterns, 1 << k)
        # every surviving node keeps its function, id-for-id via the remap
        for old, new in remap.items():
            if net.gates[old] is Gate.T1_CELL:
                continue
            assert before[old] == after[new], f"node {old}->{new} changed"
        # and every PO root survives
        for po in net.pos:
            assert po in remap

    @pytest.mark.parametrize("seed", range(8))
    def test_compact_in_place_matches_rebuild(self, seed):
        rng = random.Random(3000 + seed)
        net = random_dag(rng)
        # sweep == clone + compact by construction; check against the
        # from-scratch reference: id sequence, gates, fanins, POs
        rebuilt, remap_a = sweep(net)
        work = net.clone()
        remap_b = work.compact()
        assert work.gates == rebuilt.gates
        assert work.fanins == rebuilt.fanins
        assert work.pis == rebuilt.pis
        assert work.pos == rebuilt.pos
        assert work.po_names == rebuilt.po_names
        assert remap_a.to_dict() == remap_b.to_dict()
        assert_kernel_consistent(work)

    def test_mutate_after_compact(self):
        rng = random.Random(99)
        net = random_dag(rng)
        net.compact()
        # the compacted network must stay fully mutable and consistent
        g = net.add_xor(net.pis[0], net.pis[1])
        net.add_po(g)
        net.substitute(net.pos[0], net.pis[2])
        assert_kernel_consistent(net)


class TestStrashAndBalance:
    @pytest.mark.parametrize("seed", range(8))
    def test_strash_differential(self, seed):
        rng = random.Random(4000 + seed)
        net = random_dag(rng)
        hashed, remap = strash(net)
        assert_kernel_consistent(hashed)
        assert hashed.po_names == net.po_names
        tts_a = simulate_exhaustive(net)
        tts_b = simulate_exhaustive(hashed)
        assert [t.bits for t in tts_a] == [t.bits for t in tts_b]
        k = len(net.pis)
        patterns = exhaustive_pi_patterns(k)
        before = simulate(net, patterns, 1 << k)
        after = simulate(hashed, patterns, 1 << k)
        for old, new in remap.items():
            if net.gates[old] is Gate.T1_CELL:
                continue
            assert before[old] == after[new]

    @pytest.mark.parametrize("seed", range(6))
    def test_balance_differential(self, seed):
        rng = random.Random(5000 + seed)
        net = random_dag(rng, n_gates=50)
        balanced, mapping = balance(net)
        assert_kernel_consistent(balanced)
        assert balanced.po_names == net.po_names
        tts_a = simulate_exhaustive(net)
        tts_b = simulate_exhaustive(balanced)
        assert [t.bits for t in tts_a] == [t.bits for t in tts_b]
        assert balanced.depth() <= net.depth()


class TestHashConsing:
    def test_duplicate_gate_returns_existing_id(self):
        net = LogicNetwork(hash_cons=True)
        a, b = net.add_pi(), net.add_pi()
        g1 = net.add_and(a, b)
        g2 = net.add_and(a, b)
        g3 = net.add_and(b, a)  # commutative canonicalisation
        assert g1 == g2 == g3
        assert_kernel_consistent(net)

    def test_folding_at_creation(self):
        net = LogicNetwork(hash_cons=True)
        a = net.add_pi()
        assert net.add_and(a, CONST1) == a
        assert net.add_or(a, CONST0) == a
        assert net.add_and(a, CONST0) == CONST0
        assert net.add_buf(a) == a
        n = net.add_not(a)
        assert net.add_not(n) == a  # double negation collapses
        assert net.add_xor(a, a) == CONST0
        assert net.add_maj3(a, a, n) == a
        assert_kernel_consistent(net)

    def test_t1_blocks_hash_cons(self):
        net = LogicNetwork(hash_cons=True)
        a, b, c = (net.add_pi() for _ in range(3))
        cell1 = net.add_t1_cell(a, b, c)
        cell2 = net.add_t1_cell(a, b, c)
        assert cell1 == cell2
        s1 = net.add_t1_tap(cell1, Gate.T1_S)
        s2 = net.add_t1_tap(cell2, Gate.T1_S)
        assert s1 == s2
        assert_kernel_consistent(net)

    @pytest.mark.parametrize("seed", range(6))
    def test_hash_consed_replay_equals_strash(self, seed):
        # replaying a network's live structure through a hash-consing
        # kernel and compacting is exactly strash: same nodes, same ids
        from repro.network.traversal import live_nodes

        rng = random.Random(6000 + seed)
        net = random_dag(rng)
        live = live_nodes(net)
        consed = LogicNetwork(net.name, hash_cons=True)
        mapping = {CONST0: CONST0, CONST1: CONST1}
        for pi in net.pis:
            mapping[pi] = consed.add_pi(net.get_name(pi))
        for node in net.topological_order():
            if node in mapping or node not in live or net.gates[node] is Gate.PI:
                continue
            fins = tuple(mapping[f] for f in net.fanins[node])
            mapping[node] = consed.add_gate(net.gates[node], fins)
        for po, name in zip(net.pos, net.po_names):
            consed.add_po(mapping[po], name)
        assert_kernel_consistent(consed)
        consed.compact()
        hashed, _ = strash(net)
        assert consed.gates == hashed.gates
        assert consed.fanins == hashed.fanins
        assert consed.pos == hashed.pos
        tts_a = simulate_exhaustive(net)
        tts_b = simulate_exhaustive(consed)
        assert [t.bits for t in tts_a] == [t.bits for t in tts_b]
        assert consed.num_nodes() <= net.num_nodes()

    def test_substitute_keeps_hash_table_consistent(self):
        net = LogicNetwork(hash_cons=True)
        a, b, c = (net.add_pi() for _ in range(3))
        g1 = net.add_and(a, b)
        g2 = net.add_or(g1, c)
        net.add_po(g2)
        net.substitute(g1, c)
        assert_kernel_consistent(net)
        # after the rewrite, an equal-structure add must dedupe onto a
        # node with that structure, not resurrect the stale key
        g3 = net.add_or(c, c)  # folds to alias c
        assert g3 == c


class TestNodeMap:
    def test_mapping_protocol_and_compose(self):
        m1 = NodeMap({1: 10, 2: 20, 3: 30})
        m2 = NodeMap({10: 100, 30: 300})
        assert m1[1] == 10
        assert 2 in m1
        assert len(m1) == 3
        assert dict(m1) == {1: 10, 2: 20, 3: 30}
        composed = m1.compose(m2)
        assert composed.to_dict() == {1: 100, 3: 300}
        assert m1.apply(7) is None
        assert m1.apply_all([3, 7, 1]) == [30, 10]
        assert NodeMap.identity([0, 1]).to_dict() == {0: 0, 1: 1}

    def test_chained_remaps_across_passes(self):
        rng = random.Random(42)
        net = random_dag(rng)
        hashed, m1 = strash(net)
        balanced, m2 = balance(hashed)
        chained = m1.compose(m2)
        k = len(net.pis)
        patterns = exhaustive_pi_patterns(k)
        before = simulate(net, patterns, 1 << k)
        after = simulate(balanced, patterns, 1 << k)
        for po in net.pos:
            assert before[po] == after[chained[po]]
