"""Tests for combinational equivalence checking."""

import pytest

from repro.errors import EquivalenceError, NetworkError
from repro.network import (
    LogicNetwork,
    assert_equivalent,
    check_equivalence,
    exhaustive_equivalence,
    exhaustive_pi_patterns,
    exhaustive_pi_patterns_chunk,
    sat_equivalence,
    signature_equivalence,
    simulate_equivalence,
)


def xor_via_ands(net, a, b):
    na, nb = net.add_not(a), net.add_not(b)
    return net.add_or(net.add_and(a, nb), net.add_and(na, b))


def make_pair(equal=True, n=3):
    """Two structurally different networks computing XOR of n inputs."""
    n1 = LogicNetwork("direct")
    pis1 = [n1.add_pi(f"x{i}") for i in range(n)]
    acc1 = pis1[0]
    for p in pis1[1:]:
        acc1 = n1.add_xor(acc1, p)
    n1.add_po(acc1)

    n2 = LogicNetwork("decomposed")
    pis2 = [n2.add_pi(f"x{i}") for i in range(n)]
    acc = pis2[0]
    for p in pis2[1:]:
        acc = xor_via_ands(n2, acc, p)
    if not equal:
        acc = n2.add_not(acc)
    n2.add_po(acc)
    return n1, n2


class TestExhaustive:
    def test_equivalent(self):
        a, b = make_pair(True)
        assert exhaustive_equivalence(a, b).equivalent

    def test_inequivalent_with_witness(self):
        a, b = make_pair(False)
        res = exhaustive_equivalence(a, b)
        assert not res.equivalent
        assert res.counterexample is not None
        assert set(res.counterexample) == {"x0", "x1", "x2"}


class TestRandom:
    def test_finds_difference(self):
        a, b = make_pair(False, n=20)
        res = simulate_equivalence(a, b, width=256, rounds=2)
        assert not res.equivalent

    def test_passes_equivalent(self):
        a, b = make_pair(True, n=20)
        res = simulate_equivalence(a, b, width=256, rounds=2)
        assert res.equivalent


class TestSat:
    def test_unsat_miter_means_equivalent(self):
        a, b = make_pair(True, n=6)
        assert sat_equivalence(a, b).equivalent

    def test_sat_miter_gives_valid_witness(self):
        a, b = make_pair(False, n=6)
        res = sat_equivalence(a, b)
        assert not res.equivalent
        cex = res.counterexample
        # replay the witness: outputs must differ
        from repro.network import simulate_words

        row = [cex[f"x{i}"] for i in range(6)]
        oa = simulate_words(a, [row])[0]
        ob = simulate_words(b, [row])[0]
        assert oa != ob


class TestDriver:
    def test_small_uses_exhaustive(self):
        a, b = make_pair(True)
        assert check_equivalence(a, b).method == "exhaustive"

    def test_large_uses_random_then_sat(self):
        a, b = make_pair(True, n=18)
        res = check_equivalence(a, b, complete=True)
        assert res.equivalent
        assert res.method == "sat"

    def test_incomplete_mode_stops_at_random(self):
        a, b = make_pair(True, n=18)
        res = check_equivalence(a, b, complete=False)
        assert res.method == "random"

    def test_interface_mismatch_raises(self):
        a, _ = make_pair(True, 3)
        b, _ = make_pair(True, 4)
        with pytest.raises(NetworkError):
            check_equivalence(a, b)

    def test_assert_equivalent_raises_with_witness(self):
        a, b = make_pair(False)
        with pytest.raises(EquivalenceError) as exc:
            assert_equivalent(a, b)
        assert exc.value.counterexample is not None


class TestChunkedExhaustive:
    def test_chunk_patterns_tile_full_stimulus(self):
        # concatenating the chunk words must reproduce the classic
        # exhaustive stimulus exactly
        num_pis, chunk_pis = 6, 4
        width = 1 << chunk_pis
        full = exhaustive_pi_patterns(num_pis)
        rebuilt = [0] * num_pis
        for chunk in range(1 << (num_pis - chunk_pis)):
            vecs = exhaustive_pi_patterns_chunk(num_pis, chunk_pis, chunk)
            for i in range(num_pis):
                rebuilt[i] |= vecs[i] << (chunk * width)
        assert rebuilt == full

    def test_chunk_zero_of_single_chunk_is_full(self):
        assert exhaustive_pi_patterns_chunk(4, 6, 0) == exhaustive_pi_patterns(4)

    def test_chunk_index_out_of_range(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            exhaustive_pi_patterns_chunk(6, 4, 4)

    def test_chunked_equivalent_pair(self):
        a, b = make_pair(True, n=6)
        assert exhaustive_equivalence(a, b, chunk_pis=3).equivalent

    def test_chunked_finds_difference_with_witness(self):
        a, b = make_pair(False, n=6)
        res = exhaustive_equivalence(a, b, chunk_pis=3)
        assert not res.equivalent
        from repro.network import simulate_words

        row = [res.counterexample[f"x{i}"] for i in range(6)]
        assert simulate_words(a, [row])[0] != simulate_words(b, [row])[0]


class TestSignatureEngine:
    def test_equivalent_pair_leaves_all_pairs_undistinguished(self):
        a, b = make_pair(True, n=20)
        res, undistinguished = signature_equivalence(a, b, width=256, rounds=2)
        assert res.equivalent
        assert undistinguished == list(range(len(a.pos)))

    def test_difference_yields_witness(self):
        a, b = make_pair(False, n=20)
        res, undistinguished = signature_equivalence(a, b, width=256, rounds=2)
        assert not res.equivalent
        assert res.counterexample is not None
        assert undistinguished == []
        from repro.network import simulate_words

        row = [res.counterexample[f"x{i}"] for i in range(20)]
        assert simulate_words(a, [row])[0] != simulate_words(b, [row])[0]

    def test_width_bounded_by_memory_budget(self):
        import repro.network.equivalence as eq

        a, b = make_pair(True, n=18)
        num_nodes = max(a.num_nodes(), b.num_nodes())
        # a budget that forces at least one halving on this network
        old = eq.SIGNATURE_WIDTH_BUDGET_BITS
        eq.SIGNATURE_WIDTH_BUDGET_BITS = num_nodes * 8192
        try:
            res, undistinguished = signature_equivalence(
                a, b, width=32768, rounds=2
            )
        finally:
            eq.SIGNATURE_WIDTH_BUDGET_BITS = old
        # the halved width must preserve verdict and total stimulus
        assert res.equivalent
        assert undistinguished == list(range(len(a.pos)))

    def test_matches_seed_random_engine_verdicts(self):
        for equal in (True, False):
            a, b = make_pair(equal, n=18)
            seed_res = simulate_equivalence(a, b, width=256, rounds=2)
            sig_res, _ = signature_equivalence(a, b, width=512, rounds=1)
            assert seed_res.equivalent == sig_res.equivalent == equal


class TestRestrictedSatMiter:
    def three_po_pair(self, equal_mask):
        """Two 3-PO networks; PO i differs iff bit i of equal_mask is 0."""
        n = 6
        a = LogicNetwork("a")
        pis_a = [a.add_pi(f"x{i}") for i in range(n)]
        b = LogicNetwork("b")
        pis_b = [b.add_pi(f"x{i}") for i in range(n)]
        for po in range(3):
            acc_a = pis_a[po]
            acc_b = pis_b[po]
            for p_a, p_b in zip(pis_a[po + 1 :], pis_b[po + 1 :]):
                acc_a = a.add_xor(acc_a, p_a)
                acc_b = xor_via_ands(b, acc_b, p_b)
            if not (equal_mask >> po) & 1:
                acc_b = b.add_not(acc_b)
            a.add_po(acc_a, f"y{po}")
            b.add_po(acc_b, f"y{po}")
        return a, b

    def test_pairs_subset_proves_equal_pairs(self):
        a, b = self.three_po_pair(0b101)  # PO 1 differs
        assert sat_equivalence(a, b, pairs=[0, 2]).equivalent
        assert not sat_equivalence(a, b, pairs=[1]).equivalent
        assert not sat_equivalence(a, b).equivalent

    def test_pairs_none_equals_all(self):
        a, b = self.three_po_pair(0b111)
        assert sat_equivalence(a, b).equivalent
        assert sat_equivalence(a, b, pairs=[0, 1, 2]).equivalent

    def test_pair_index_out_of_range(self):
        a, b = self.three_po_pair(0b111)
        with pytest.raises(NetworkError):
            sat_equivalence(a, b, pairs=[5])

    def test_empty_pairs_vacuously_equivalent(self):
        a, b = self.three_po_pair(0b000)  # every PO differs
        res = sat_equivalence(a, b, pairs=[])
        assert res.equivalent and res.method == "sat"

    def test_restricted_miter_with_t1_blocks(self):
        from repro.network import Gate

        t1net = LogicNetwork()
        a, b, c = (t1net.add_pi(f"x{i}") for i in range(3))
        cell = t1net.add_t1_cell(a, b, c)
        t1net.add_po(t1net.add_t1_tap(cell, Gate.T1_S))
        t1net.add_po(t1net.add_t1_tap(cell, Gate.T1_C))

        ref = LogicNetwork()
        x, y, z = (ref.add_pi(f"x{i}") for i in range(3))
        ref.add_po(ref.add_xor(x, y, z))
        ref.add_po(ref.add_maj3(x, y, z))

        assert sat_equivalence(t1net, ref, pairs=[0]).equivalent
        assert sat_equivalence(t1net, ref, pairs=[1]).equivalent


class TestT1Equivalence:
    def test_t1_block_vs_explicit_gates(self):
        from repro.network import Gate

        t1net = LogicNetwork()
        a, b, c = (t1net.add_pi(f"x{i}") for i in range(3))
        cell = t1net.add_t1_cell(a, b, c)
        t1net.add_po(t1net.add_t1_tap(cell, Gate.T1_S))
        t1net.add_po(t1net.add_t1_tap(cell, Gate.T1_C))
        t1net.add_po(t1net.add_t1_tap(cell, Gate.T1_QN))

        ref = LogicNetwork()
        x, y, z = (ref.add_pi(f"x{i}") for i in range(3))
        ref.add_po(ref.add_xor(x, y, z))
        ref.add_po(ref.add_maj3(x, y, z))
        ref.add_po(ref.add_nor(x, y, z))

        assert exhaustive_equivalence(t1net, ref).equivalent
        assert sat_equivalence(t1net, ref).equivalent
