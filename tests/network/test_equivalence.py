"""Tests for combinational equivalence checking."""

import pytest

from repro.errors import EquivalenceError, NetworkError
from repro.network import (
    LogicNetwork,
    assert_equivalent,
    check_equivalence,
    exhaustive_equivalence,
    sat_equivalence,
    simulate_equivalence,
)


def xor_via_ands(net, a, b):
    na, nb = net.add_not(a), net.add_not(b)
    return net.add_or(net.add_and(a, nb), net.add_and(na, b))


def make_pair(equal=True, n=3):
    """Two structurally different networks computing XOR of n inputs."""
    n1 = LogicNetwork("direct")
    pis1 = [n1.add_pi(f"x{i}") for i in range(n)]
    acc1 = pis1[0]
    for p in pis1[1:]:
        acc1 = n1.add_xor(acc1, p)
    n1.add_po(acc1)

    n2 = LogicNetwork("decomposed")
    pis2 = [n2.add_pi(f"x{i}") for i in range(n)]
    acc = pis2[0]
    for p in pis2[1:]:
        acc = xor_via_ands(n2, acc, p)
    if not equal:
        acc = n2.add_not(acc)
    n2.add_po(acc)
    return n1, n2


class TestExhaustive:
    def test_equivalent(self):
        a, b = make_pair(True)
        assert exhaustive_equivalence(a, b).equivalent

    def test_inequivalent_with_witness(self):
        a, b = make_pair(False)
        res = exhaustive_equivalence(a, b)
        assert not res.equivalent
        assert res.counterexample is not None
        assert set(res.counterexample) == {"x0", "x1", "x2"}


class TestRandom:
    def test_finds_difference(self):
        a, b = make_pair(False, n=20)
        res = simulate_equivalence(a, b, width=256, rounds=2)
        assert not res.equivalent

    def test_passes_equivalent(self):
        a, b = make_pair(True, n=20)
        res = simulate_equivalence(a, b, width=256, rounds=2)
        assert res.equivalent


class TestSat:
    def test_unsat_miter_means_equivalent(self):
        a, b = make_pair(True, n=6)
        assert sat_equivalence(a, b).equivalent

    def test_sat_miter_gives_valid_witness(self):
        a, b = make_pair(False, n=6)
        res = sat_equivalence(a, b)
        assert not res.equivalent
        cex = res.counterexample
        # replay the witness: outputs must differ
        from repro.network import simulate_words

        row = [cex[f"x{i}"] for i in range(6)]
        oa = simulate_words(a, [row])[0]
        ob = simulate_words(b, [row])[0]
        assert oa != ob


class TestDriver:
    def test_small_uses_exhaustive(self):
        a, b = make_pair(True)
        assert check_equivalence(a, b).method == "exhaustive"

    def test_large_uses_random_then_sat(self):
        a, b = make_pair(True, n=18)
        res = check_equivalence(a, b, complete=True)
        assert res.equivalent
        assert res.method == "sat"

    def test_incomplete_mode_stops_at_random(self):
        a, b = make_pair(True, n=18)
        res = check_equivalence(a, b, complete=False)
        assert res.method == "random"

    def test_interface_mismatch_raises(self):
        a, _ = make_pair(True, 3)
        b, _ = make_pair(True, 4)
        with pytest.raises(NetworkError):
            check_equivalence(a, b)

    def test_assert_equivalent_raises_with_witness(self):
        a, b = make_pair(False)
        with pytest.raises(EquivalenceError) as exc:
            assert_equivalent(a, b)
        assert exc.value.counterexample is not None


class TestT1Equivalence:
    def test_t1_block_vs_explicit_gates(self):
        from repro.network import Gate

        t1net = LogicNetwork()
        a, b, c = (t1net.add_pi(f"x{i}") for i in range(3))
        cell = t1net.add_t1_cell(a, b, c)
        t1net.add_po(t1net.add_t1_tap(cell, Gate.T1_S))
        t1net.add_po(t1net.add_t1_tap(cell, Gate.T1_C))
        t1net.add_po(t1net.add_t1_tap(cell, Gate.T1_QN))

        ref = LogicNetwork()
        x, y, z = (ref.add_pi(f"x{i}") for i in range(3))
        ref.add_po(ref.add_xor(x, y, z))
        ref.add_po(ref.add_maj3(x, y, z))
        ref.add_po(ref.add_nor(x, y, z))

        assert exhaustive_equivalence(t1net, ref).equivalent
        assert sat_equivalence(t1net, ref).equivalent
