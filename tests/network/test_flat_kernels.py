"""Differential fuzz of the array-native analysis/rewrite kernels.

PR 9 ported the hot loops of cut enumeration, MFFC computation,
balancing, ``structural_diff`` and the refactor scorer onto the flat
struct-of-arrays core (``gate_codes`` + CSR fanin pool).  These tests
pin the ports three ways:

* **vs the retained oracles** — ``enumerate_cuts`` against
  ``enumerate_cuts_reference`` on fuzzed mutator sequences and on the
  ``--scale`` synthetic generators;
* **vs the tuple kernel** — every ported pass also runs on a
  ``ReferenceLogicNetwork`` replay of the same circuit (exercising the
  ``flat_arrays`` snapshot fallback) and must produce identical
  results, including across ``compact()`` NodeMap events;
* **numpy lanes in lockstep** — the cut-merge lane (forced via
  ``NUMPY_MERGE_MIN_PRODUCT``) and the ``engine="numpy"`` simulation
  lane against the pure-python paths, plus the ``REPRO_NO_NUMPY``
  kill switch.

The mutator machinery is shared with ``test_flat_core``.
"""

import random

import pytest

import repro.network.cuts as cuts_mod
import repro.util as util
from repro.circuits.synthetic import build_synthetic
from repro.errors import SimulationError
from repro.network import (
    Gate,
    LogicNetwork,
    MffcComputer,
    balance,
    enumerate_cuts,
    enumerate_cuts_reference,
    simulate,
    structural_diff,
)
from repro.network.cuts import cached_cut_database
from repro.network.gates import is_t1_tap
from repro.network.logic_network_reference import ReferenceLogicNetwork
from repro.network.simulation import random_patterns

from tests.network.test_flat_core import _fuzz_round, _seed_pair


def rows_of(db):
    """Per-node ``(leaves, bits)`` rows — the full cut-set surface."""
    rl, rb = db.raw_rows()
    return [
        [(rl[i], rb[i]) for i in db.node_rows(n)]
        for n in range(len(db.cuts))
    ]


def to_reference(net):
    """Replay *net* node-for-node into the retained tuple kernel."""
    ref = ReferenceLogicNetwork(net.name)
    for n in range(2, net.num_nodes()):
        g = net.gate(n)
        if g is Gate.PI:
            ref.add_pi(net.get_name(n))
        elif g is Gate.T1_CELL:
            ref.add_t1_cell(*net.fanin(n))
        elif is_t1_tap(g):
            ref.add_t1_tap(net.fanin(n)[0], g)
        else:
            ref.add_gate(g, net.fanin(n))
    for po, name in zip(net.pos, net.po_names):
        ref.add_po(po, name)
    assert ref.structural_hash() == net.structural_hash()
    return ref


def _fuzzed_pair(seed, n_ops=80, allow_t1=True):
    rng = random.Random(f"flat-kernels:{seed}")
    flat, ref = _seed_pair()
    _fuzz_round(rng, flat, ref, n_ops=n_ops, allow_t1=allow_t1)
    if not flat.pos:
        sink = flat.num_nodes() - 1
        flat.add_po(sink)
        ref.add_po(sink)
    return rng, flat, ref


class TestCutKernelDifferential:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [3, 4])
    def test_fuzzed_networks_match_oracle(self, seed, k):
        _rng, flat, ref = _fuzzed_pair(seed)
        kernel = rows_of(enumerate_cuts(flat, k=k))
        oracle = rows_of(enumerate_cuts_reference(flat, k=k))
        assert kernel == oracle
        # the snapshot fallback of flat_arrays: same kernel, tuple net
        assert rows_of(enumerate_cuts(ref, k=k)) == oracle

    @pytest.mark.parametrize("name", ["datapath", "cascade"])
    def test_scale_synthetics_match_oracle(self, name):
        net = build_synthetic(name, 3000, seed=5)
        assert rows_of(enumerate_cuts(net, k=4)) == rows_of(
            enumerate_cuts_reference(net, k=4)
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_remap_across_compact_event(self, seed):
        """A compact() NodeMap is just another remap event: the carried
        database must equal from-scratch enumeration on the new net."""
        _rng, flat, _ref = _fuzzed_pair(seed, n_ops=60)
        db = enumerate_cuts(flat, k=3)
        work = flat.clone()
        nm = work.compact()
        carried = db.remap(flat, work, nm)
        assert rows_of(carried) == rows_of(enumerate_cuts(work, k=3))
        assert carried.epoch == work.epoch

    def test_nbytes_reports_flat_storage(self):
        net = build_synthetic("datapath", 2000, seed=0)
        small = enumerate_cuts(net, k=3)
        large = enumerate_cuts(net, k=4)
        assert small.nbytes() > 0
        # wider cuts mean more and longer rows
        assert large.nbytes() > small.nbytes()

    def test_materialised_cuts_identity_stable(self):
        net = build_synthetic("datapath", 500, seed=1)
        db = enumerate_cuts(net, k=3)
        node = net.num_nodes() - 1
        assert db[node][0] is db[node][0]
        assert len(db.cuts) == net.num_nodes()


class TestCutLeafIndex:
    def test_cut_with_leaves_hits_enumerated_cuts(self):
        net = build_synthetic("datapath", 800, seed=2)
        db = cached_cut_database(net, k=3)
        node = net.num_nodes() - 1
        for cut in db[node]:
            assert db.cut_with_leaves(node, cut.leaves) is cut
        assert db.cut_with_leaves(node, (0, 1)) is None

    def test_index_carried_on_identity_remap(self):
        """An id-preserving event (clone + identity map, e.g. a pass
        that changed nothing): warm leaf indices and materialised cuts
        ride along instead of being rebuilt per database."""
        net = build_synthetic("datapath", 800, seed=3)
        db = enumerate_cuts(net, k=3)
        warm_nodes = range(net.num_nodes() - 20, net.num_nodes())
        for node in warm_nodes:
            db.cut_with_leaves(node, db[node][0].leaves)
        work = net.clone()
        nm = {n: n for n in range(net.num_nodes())}
        carried = db.remap(net, work, nm)
        assert carried.remap_index_carried == len(list(warm_nodes))
        for node in warm_nodes:
            leaves = carried[node][0].leaves
            assert carried.cut_with_leaves(node, leaves).leaves == leaves

    def test_stale_epoch_drops_index(self):
        net = build_synthetic("datapath", 400, seed=4)
        db = cached_cut_database(net, k=3)
        node = net.num_nodes() - 1
        leaves = db[node][0].leaves
        assert db.cut_with_leaves(node, leaves) is not None
        # simulate re-adoption at another epoch: the stamp no longer
        # matches, so the whole index must be discarded, not served
        db.epoch += 1
        assert db._leaf_index_epoch != db.epoch
        assert db.cut_with_leaves(node, leaves).leaves == leaves
        assert db._leaf_index_epoch == db.epoch


class TestMffcDifferential:
    @pytest.mark.parametrize("seed", range(5))
    def test_fuzzed_networks_match_tuple_kernel(self, seed):
        rng, flat, ref = _fuzzed_pair(seed)
        mf = MffcComputer(flat)
        mr = MffcComputer(ref)
        n = flat.num_nodes()
        roots = [rng.randrange(2, n) for _ in range(30)]
        for root in roots:
            assert mf.mffc(root) == mr.mffc(root)
            boundary = flat.fanin(root)
            assert mf.mffc(root, boundary) == mr.mffc(root, boundary)
        group = [rng.randrange(2, n) for _ in range(5)]
        assert mf.mffc_union(group) == mr.mffc_union(group)

    def test_scale_synthetic_matches_tuple_kernel(self):
        net = build_synthetic("datapath", 3000, seed=6)
        ref = to_reference(net)
        mf = MffcComputer(net)
        mr = MffcComputer(ref)
        for root in range(net.num_nodes() - 50, net.num_nodes()):
            assert mf.mffc(root) == mr.mffc(root)


class TestBalanceDifferential:
    @pytest.mark.parametrize("seed", range(5))
    def test_fuzzed_networks_lockstep(self, seed):
        _rng, flat, ref = _fuzzed_pair(seed)
        out_f, nm_f = balance(flat)
        out_r, nm_r = balance(ref)
        assert dict(nm_f) == dict(nm_r)
        assert list(out_f.gates) == list(out_r.gates)
        assert list(out_f.fanins) == list(out_r.fanins)
        assert out_f.pos == out_r.pos
        assert out_f.structural_hash() == out_r.structural_hash()

    def test_scale_synthetic_lockstep(self):
        net = build_synthetic("cascade", 3000, seed=7)
        ref = to_reference(net)
        out_f, nm_f = balance(net)
        out_r, nm_r = balance(ref)
        assert dict(nm_f) == dict(nm_r)
        assert out_f.structural_hash() == out_r.structural_hash()


class TestStructuralDiffDifferential:
    @pytest.mark.parametrize("seed", range(5))
    def test_compact_event_lockstep(self, seed):
        rng, flat, ref = _fuzzed_pair(seed)
        new_f = flat.clone()
        nm_f = new_f.compact()
        new_r = ref.clone()
        nm_r = new_r.compact()
        assert dict(nm_f) == dict(nm_r)
        # perturb the compacted nets in lockstep so the diff is nonempty
        n = new_f.num_nodes()
        for _ in range(5):
            node = rng.randrange(2, n)
            fins = new_f.fanin(node)
            if not fins:
                continue
            old = fins[rng.randrange(len(fins))]
            new = rng.randrange(node)
            new_f.replace_fanin(node, old, new)
            new_r.replace_fanin(node, old, new)
        dirty_f = structural_diff(flat, new_f, nm_f)
        dirty_r = structural_diff(ref, new_r, nm_r)
        assert dirty_f == dirty_r


needs_numpy = pytest.mark.skipif(
    not util.have_numpy(), reason="numpy unavailable"
)


class TestNumpyLanes:
    @needs_numpy
    @pytest.mark.parametrize("seed", range(3))
    def test_merge_lane_lockstep(self, seed, monkeypatch):
        """Forcing the product threshold to 1 routes every 2-fanin merge
        through the vectorised lane; rows must stay bit-identical."""
        _rng, flat, _ref = _fuzzed_pair(seed)
        pure = rows_of(enumerate_cuts(flat, k=4))
        monkeypatch.setattr(cuts_mod, "NUMPY_MERGE_MIN_PRODUCT", 1)
        assert rows_of(enumerate_cuts(flat, k=4)) == pure

    @needs_numpy
    def test_merge_lane_on_synthetic(self, monkeypatch):
        net = build_synthetic("datapath", 2000, seed=8)
        pure = rows_of(enumerate_cuts(net, k=4, cuts_per_node=16))
        monkeypatch.setattr(cuts_mod, "NUMPY_MERGE_MIN_PRODUCT", 1)
        assert rows_of(enumerate_cuts(net, k=4, cuts_per_node=16)) == pure

    @needs_numpy
    @pytest.mark.parametrize("seed", range(3))
    def test_simulation_engine_lockstep(self, seed):
        rng = random.Random(f"np-sim:{seed}")
        flat, ref = _seed_pair()
        # taps rewired off their cell have no simulation semantics
        _fuzz_round(rng, flat, ref, n_ops=100, allow_t1=False)
        width = 64
        pats = random_patterns(len(flat.pis), width, seed=seed)
        py = simulate(flat, pats, width, engine="python")
        assert simulate(flat, pats, width, engine="numpy") == py
        assert simulate(flat, pats, width, engine="auto") == py

    @needs_numpy
    def test_numpy_engine_rejects_wide_words(self):
        net = build_synthetic("datapath", 200, seed=9)
        pats = random_patterns(len(net.pis), 128, seed=0)
        with pytest.raises(SimulationError):
            simulate(net, pats, 128, engine="numpy")

    def test_unknown_engine_rejected(self):
        net = build_synthetic("datapath", 200, seed=9)
        pats = random_patterns(len(net.pis), 8, seed=0)
        with pytest.raises(SimulationError):
            simulate(net, pats, 8, engine="cuda")

    def test_no_numpy_env_kills_the_lanes(self, monkeypatch):
        monkeypatch.setenv(util.NO_NUMPY_ENV, "1")
        monkeypatch.setattr(cuts_mod, "NUMPY_MERGE_MIN_PRODUCT", 1)
        util.reset_numpy_probe()
        try:
            assert not util.have_numpy()
            net = build_synthetic("datapath", 1000, seed=10)
            # cut merges fall back to the pure loop, bit-identically
            assert rows_of(enumerate_cuts(net, k=4)) == rows_of(
                enumerate_cuts_reference(net, k=4)
            )
            pats = random_patterns(len(net.pis), 16, seed=1)
            with pytest.raises(SimulationError):
                simulate(net, pats, 16, engine="numpy")
        finally:
            monkeypatch.delenv(util.NO_NUMPY_ENV)
            util.reset_numpy_probe()
