"""Tests for bit-parallel simulation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.network import (
    Gate,
    LogicNetwork,
    TruthTable,
    eval_int,
    node_function_on_leaves,
    simulate_exhaustive,
    simulate_pos,
    simulate_words,
    maj3_tt,
    or3_tt,
    xor3_tt,
)


def full_adder_net():
    net = LogicNetwork("fa")
    a, b, c = net.add_pi("a"), net.add_pi("b"), net.add_pi("c")
    s = net.add_xor(a, b, c)
    carry = net.add_maj3(a, b, c)
    net.add_po(s, "sum")
    net.add_po(carry, "carry")
    return net


class TestExhaustive:
    def test_full_adder_tables(self):
        tts = simulate_exhaustive(full_adder_net())
        assert tts[0] == xor3_tt()
        assert tts[1] == maj3_tt()

    def test_constants(self):
        net = LogicNetwork()
        net.add_pi()
        net.add_po(1)
        net.add_po(0)
        tts = simulate_exhaustive(net)
        assert tts[0] == TruthTable.const(True, 1)
        assert tts[1] == TruthTable.const(False, 1)

    def test_not_gate(self):
        net = LogicNetwork()
        a = net.add_pi()
        net.add_po(net.add_not(a))
        tts = simulate_exhaustive(net)
        assert tts[0] == ~TruthTable.var(0, 1)

    def test_nary_gates(self):
        net = LogicNetwork()
        pis = [net.add_pi() for _ in range(4)]
        net.add_po(net.add_and(*pis))
        net.add_po(net.add_or(*pis))
        net.add_po(net.add_xor(*pis))
        tts = simulate_exhaustive(net)
        a, b, c, d = (TruthTable.var(i, 4) for i in range(4))
        assert tts[0] == a & b & c & d
        assert tts[1] == a | b | c | d
        assert tts[2] == a ^ b ^ c ^ d

    def test_inverted_gates(self):
        net = LogicNetwork()
        a, b = net.add_pi(), net.add_pi()
        net.add_po(net.add_nand(a, b))
        net.add_po(net.add_nor(a, b))
        net.add_po(net.add_xnor(a, b))
        tts = simulate_exhaustive(net)
        x, y = TruthTable.var(0, 2), TruthTable.var(1, 2)
        assert tts[0] == ~(x & y)
        assert tts[1] == ~(x | y)
        assert tts[2] == ~(x ^ y)


class TestT1Simulation:
    def test_t1_taps_evaluate_cell_functions(self):
        net = LogicNetwork()
        a, b, c = (net.add_pi() for _ in range(3))
        cell = net.add_t1_cell(a, b, c)
        for tap, expect in [
            (Gate.T1_S, xor3_tt()),
            (Gate.T1_C, maj3_tt()),
            (Gate.T1_Q, or3_tt()),
            (Gate.T1_CN, ~maj3_tt()),
            (Gate.T1_QN, ~or3_tt()),
        ]:
            net.add_po(net.add_t1_tap(cell, tap))
        tts = simulate_exhaustive(net)
        assert tts[0] == xor3_tt()
        assert tts[1] == maj3_tt()
        assert tts[2] == or3_tt()
        assert tts[3] == ~maj3_tt()
        assert tts[4] == ~or3_tt()


class TestWordSimulation:
    def test_simulate_words_rows(self):
        net = full_adder_net()
        rows = [(a, b, c) for a in (0, 1) for b in (0, 1) for c in (0, 1)]
        out = simulate_words(net, rows)
        for (a, b, c), (s, cy) in zip(rows, out):
            assert s == (a + b + c) % 2
            assert cy == (1 if a + b + c >= 2 else 0)

    def test_eval_int_dict(self):
        net = full_adder_net()
        a, b, c = net.pis
        res = eval_int(net, {a: 1, b: 1, c: 0})
        values = list(res.values())
        assert values == [0, 1]

    def test_wrong_width_raises(self):
        net = full_adder_net()
        with pytest.raises(SimulationError):
            simulate_pos(net, [1, 2], 4)


class TestNodeFunctionOnLeaves:
    def test_direct_cone(self):
        net = LogicNetwork()
        a, b, c = (net.add_pi() for _ in range(3))
        t1 = net.add_xor(a, b)
        t2 = net.add_xor(t1, c)
        tt = node_function_on_leaves(net, t2, (a, b, c))
        assert tt == xor3_tt()

    def test_intermediate_leaf(self):
        net = LogicNetwork()
        a, b, c = (net.add_pi() for _ in range(3))
        t1 = net.add_and(a, b)
        t2 = net.add_or(t1, c)
        tt = node_function_on_leaves(net, t2, (t1, c))
        x, y = TruthTable.var(0, 2), TruthTable.var(1, 2)
        assert tt == (x | y)

    def test_escaping_cone_raises(self):
        net = LogicNetwork()
        a, b, c = (net.add_pi() for _ in range(3))
        t1 = net.add_and(a, b)
        t2 = net.add_or(t1, c)
        with pytest.raises(SimulationError):
            node_function_on_leaves(net, t2, (t1,))  # c escapes

    def test_deep_chain_no_recursion_error(self):
        net = LogicNetwork()
        a = net.add_pi()
        cur = a
        for _ in range(5000):
            cur = net.add_not(cur)
        tt = node_function_on_leaves(net, cur, (a,))
        assert tt == TruthTable.var(0, 1)  # even number of inversions


@given(st.lists(st.tuples(st.booleans(), st.booleans(), st.booleans()), max_size=16))
def test_full_adder_random_rows(rows):
    net = full_adder_net()
    int_rows = [tuple(int(x) for x in r) for r in rows]
    out = simulate_words(net, int_rows)
    for (a, b, c), (s, cy) in zip(int_rows, out):
        total = a + b + c
        assert s == total % 2
        assert cy == (total >= 2)
