"""Tests for k-feasible cut enumeration."""

import pytest

from repro.network import (
    Gate,
    LogicNetwork,
    TruthTable,
    enumerate_cuts,
    maj3_tt,
    node_function_on_leaves,
    xor3_tt,
)


def full_adder_net():
    net = LogicNetwork()
    a, b, c = (net.add_pi() for _ in range(3))
    # sum = (a ^ b) ^ c, carry = ab | c(a ^ b)
    ab = net.add_xor(a, b)
    s = net.add_xor(ab, c)
    t1 = net.add_and(a, b)
    t2 = net.add_and(ab, c)
    carry = net.add_or(t1, t2)
    net.add_po(s)
    net.add_po(carry)
    return net, (a, b, c, ab, s, t1, t2, carry)


class TestBasics:
    def test_pi_trivial_cut(self):
        net = LogicNetwork()
        a = net.add_pi()
        net.add_po(a)
        db = enumerate_cuts(net, k=3)
        assert [c.leaves for c in db[a]] == [(a,)]

    def test_leaves_sorted_and_bounded(self):
        net, _ = full_adder_net()
        db = enumerate_cuts(net, k=3)
        for node in net.nodes():
            for cut in db[node]:
                assert list(cut.leaves) == sorted(cut.leaves)
                assert len(cut.leaves) <= 3

    def test_cut_tables_match_cone_simulation(self):
        net, _ = full_adder_net()
        db = enumerate_cuts(net, k=3)
        for node in net.nodes():
            if not net.is_logic(node):
                continue
            for cut in db[node]:
                if not cut.leaves or cut.leaves == (node,):
                    continue
                expect = node_function_on_leaves(net, node, cut.leaves)
                assert cut.table == expect, (node, cut.leaves)

    def test_full_adder_finds_xor3_and_maj3(self):
        net, (a, b, c, ab, s, t1, t2, carry) = full_adder_net()
        db = enumerate_cuts(net, k=3)
        leaves = (a, b, c)
        s_cut = db.cut_with_leaves(s, leaves)
        carry_cut = db.cut_with_leaves(carry, leaves)
        assert s_cut is not None and s_cut.table == xor3_tt()
        assert carry_cut is not None and carry_cut.table == maj3_tt()

    def test_irredundant(self):
        net, _ = full_adder_net()
        db = enumerate_cuts(net, k=3)
        for node in net.nodes():
            cuts = db[node]
            for i, c1 in enumerate(cuts):
                for j, c2 in enumerate(cuts):
                    if i != j:
                        assert not (set(c1.leaves) < set(c2.leaves)), (
                            node,
                            c1.leaves,
                            c2.leaves,
                        )

    def test_priority_limit_respected(self):
        net = LogicNetwork()
        pis = [net.add_pi() for _ in range(6)]
        x = net.add_and(pis[0], pis[1])
        y = net.add_and(pis[2], pis[3])
        z = net.add_and(pis[4], pis[5])
        w = net.add_and(x, y)
        v = net.add_and(w, z)
        net.add_po(v)
        db = enumerate_cuts(net, k=4, cuts_per_node=2)
        for node in net.nodes():
            assert len(db[node]) <= 3  # limit + trivial

    def test_t1_cell_gets_trivial_cut_only(self):
        net = LogicNetwork()
        a, b, c = (net.add_pi() for _ in range(3))
        cell = net.add_t1_cell(a, b, c)
        s = net.add_t1_tap(cell, Gate.T1_S)
        g = net.add_and(s, a)
        net.add_po(g)
        db = enumerate_cuts(net, k=3)
        assert [c.leaves for c in db[cell]] == [(cell,)]
        assert [c.leaves for c in db[s]] == [(s,)]

    def test_constant_fanin_cut(self):
        net = LogicNetwork()
        a = net.add_pi()
        g = net.add_and(a, 1)  # AND with const1
        net.add_po(g)
        db = enumerate_cuts(net, k=3)
        # some cut over leaf {a} must express identity
        cut = db.cut_with_leaves(g, (a,))
        assert cut is not None
        assert cut.table == TruthTable.var(0, 1)
