"""Tests for the LogicNetwork data structure and traversal."""

import pytest

from repro.errors import GateArityError, NetworkError
from repro.network import (
    CONST0,
    CONST1,
    Gate,
    LogicNetwork,
    depth,
    levels,
    topological_order,
    transitive_fanin,
    transitive_fanout,
)


def small_net():
    net = LogicNetwork("small")
    a = net.add_pi("a")
    b = net.add_pi("b")
    g1 = net.add_and(a, b)
    g2 = net.add_xor(a, b)
    g3 = net.add_or(g1, g2)
    net.add_po(g3, "y")
    return net, (a, b, g1, g2, g3)


class TestConstruction:
    def test_constants_exist(self):
        net = LogicNetwork()
        assert net.gate(CONST0) is Gate.CONST0
        assert net.gate(CONST1) is Gate.CONST1

    def test_pi_and_po(self):
        net, (a, b, g1, g2, g3) = small_net()
        assert net.pis == (a, b)
        assert net.pos == (g3,)
        assert net.po_names == ("y",)
        assert net.get_name(a) == "a"

    def test_gate_counts(self):
        net, _ = small_net()
        assert net.num_gates() == 3
        assert net.num_nodes() == 2 + 2 + 3  # consts + PIs + gates

    def test_arity_checks(self):
        net = LogicNetwork()
        a = net.add_pi()
        with pytest.raises(GateArityError):
            net.add_gate(Gate.NOT, (a, a))
        with pytest.raises(GateArityError):
            net.add_gate(Gate.AND, (a,))
        with pytest.raises(GateArityError):
            net.add_gate(Gate.MAJ3, (a, a))

    def test_missing_fanin_rejected(self):
        net = LogicNetwork()
        a = net.add_pi()
        with pytest.raises(NetworkError):
            net.add_and(a, 999)

    def test_po_to_t1_cell_rejected(self):
        net = LogicNetwork()
        a, b, c = net.add_pi(), net.add_pi(), net.add_pi()
        cell = net.add_t1_cell(a, b, c)
        with pytest.raises(NetworkError):
            net.add_po(cell)

    def test_t1_tap_requires_cell(self):
        net = LogicNetwork()
        a = net.add_pi()
        with pytest.raises(NetworkError):
            net.add_gate(Gate.T1_S, (a,))

    def test_t1_block_construction(self):
        net = LogicNetwork()
        a, b, c = (net.add_pi() for _ in range(3))
        cell = net.add_t1_cell(a, b, c)
        s = net.add_t1_tap(cell, Gate.T1_S)
        q = net.add_t1_tap(cell, Gate.T1_Q)
        net.add_po(s)
        net.add_po(q)
        assert net.t1_cells() == [cell]
        assert set(net.t1_taps_of(cell)) == {s, q}


class TestFanouts:
    def test_fanout_counts_include_pos(self):
        net, (a, b, g1, g2, g3) = small_net()
        counts = net.compute_fanout_counts()
        assert counts[a] == 2
        assert counts[g1] == 1
        assert counts[g3] == 1  # PO reference

    def test_compute_fanouts(self):
        net, (a, b, g1, g2, g3) = small_net()
        fan = net.compute_fanouts()
        assert set(fan[a]) == {g1, g2}
        assert fan[g3] == []


class TestSubstitute:
    def test_substitute_rewrites_fanins_and_pos(self):
        net, (a, b, g1, g2, g3) = small_net()
        n = net.substitute(g3, g1)
        assert n == 1
        assert net.pos == (g1,)

    def test_substitute_rewrites_multiple(self):
        net = LogicNetwork()
        a = net.add_pi()
        b = net.add_pi()
        g = net.add_and(a, b)
        h = net.add_or(g, g)
        net.add_po(h)
        count = net.substitute(g, a)
        assert count == 2
        assert net.fanin(h) == (a, a)

    def test_replace_fanin(self):
        net, (a, b, g1, g2, g3) = small_net()
        net.replace_fanin(g3, g1, a)
        assert net.fanin(g3) == (a, g2)
        with pytest.raises(NetworkError):
            net.replace_fanin(g3, g1, a)


class TestTraversal:
    def test_topological_order_sound(self):
        net, _ = small_net()
        order = topological_order(net)
        pos = {node: i for i, node in enumerate(order)}
        for node in net.nodes():
            for f in net.fanin(node):
                assert pos[f] < pos[node]

    def test_levels(self):
        net, (a, b, g1, g2, g3) = small_net()
        lvl = levels(net)
        assert lvl[a] == 0
        assert lvl[g1] == 1
        assert lvl[g3] == 2
        assert depth(net) == 2

    def test_t1_tap_level_equals_cell(self):
        net = LogicNetwork()
        a, b, c = (net.add_pi() for _ in range(3))
        x = net.add_and(a, b)
        cell = net.add_t1_cell(x, b, c)
        s = net.add_t1_tap(cell, Gate.T1_S)
        net.add_po(s)
        lvl = levels(net)
        assert lvl[cell] == 2
        assert lvl[s] == 2

    def test_transitive_fanin(self):
        net, (a, b, g1, g2, g3) = small_net()
        cone = transitive_fanin(net, [g3])
        assert cone == {a, b, g1, g2, g3}

    def test_transitive_fanout(self):
        net, (a, b, g1, g2, g3) = small_net()
        out = transitive_fanout(net, [a])
        assert out == {a, g1, g2, g3}

    def test_clone_independent(self):
        net, (a, b, g1, g2, g3) = small_net()
        c = net.clone()
        c.add_pi("extra")
        assert len(net.pis) == 2
        assert len(c.pis) == 3
