"""Tests for NPN canonisation and Boolean matching."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TruthTableError
from repro.network import (
    TruthTable,
    match_against,
    maj3_tt,
    npn_canon,
    npn_equivalent,
    or3_tt,
    xor3_tt,
)
from repro.network.npn import NpnTransform, npn_class_size, _all_transforms


class TestCanon:
    def test_canonical_is_reachable(self):
        tt = maj3_tt()
        canon, tf = npn_canon(tt)
        assert tf.apply(tt) == canon

    def test_constants_self_canonical(self):
        zero = TruthTable.const(False, 3)
        canon, _ = npn_canon(zero)
        assert canon.bits == 0

    def test_complement_pair_same_class(self):
        assert npn_equivalent(maj3_tt(), ~maj3_tt())
        assert npn_equivalent(or3_tt(), ~or3_tt())  # NOR3 == AND3 negated ins

    def test_xor_xnor_same_class(self):
        assert npn_equivalent(xor3_tt(), ~xor3_tt())

    def test_distinct_classes(self):
        assert not npn_equivalent(xor3_tt(), maj3_tt())
        assert not npn_equivalent(or3_tt(), maj3_tt())

    def test_rejects_large_tables(self):
        with pytest.raises(TruthTableError):
            npn_canon(TruthTable(0, 5))


class TestMatch:
    def test_match_found_for_permuted(self):
        f = TruthTable.from_function(lambda a, b, c: a and not b or c, 3)
        g = f.permute((2, 0, 1))
        tf = match_against(f, g)
        assert tf is not None
        assert tf.apply(g) == f

    def test_match_found_for_negated(self):
        f = maj3_tt()
        g = f.negate_vars(0b101)
        tf = match_against(f, g)
        assert tf is not None
        assert tf.apply(g) == f

    def test_no_match_across_classes(self):
        assert match_against(xor3_tt(), maj3_tt()) is None

    def test_arity_mismatch(self):
        assert match_against(TruthTable.var(0, 2), xor3_tt()) is None


class TestClassSizes:
    def test_xor3_class(self):
        # XOR3 class = {XOR3, XNOR3} only (totally symmetric, self-dual-ish)
        assert npn_class_size(xor3_tt()) == 2

    def test_maj3_class(self):
        # MAJ3 is symmetric and self-dual (output negation == negating all
        # inputs), so the class is exactly the 8 input-polarity variants
        assert npn_class_size(maj3_tt()) == 8

    def test_transform_count(self):
        assert len(_all_transforms(3)) == 6 * 8 * 2


@given(bits=st.integers(min_value=0, max_value=255))
def test_canon_is_class_invariant(bits):
    tt = TruthTable(bits, 3)
    canon, _ = npn_canon(tt)
    # applying any transform first must not change the canonical form
    for tf in list(_all_transforms(3))[::17]:  # sample a few
        tt2 = tf.apply(tt)
        canon2, _ = npn_canon(tt2)
        assert canon2 == canon


@given(bits=st.integers(min_value=0, max_value=255))
def test_canon_minimal(bits):
    tt = TruthTable(bits, 3)
    canon, _ = npn_canon(tt)
    assert canon.bits <= tt.bits
