"""Tests for the simplex LP solver."""

import numpy as np
import pytest

from repro.errors import InfeasibleError, UnboundedError
from repro.solvers import solve_lp


def test_simple_minimization():
    # min x + y s.t. x + y >= 2 encoded as -x - y <= -2
    res = solve_lp([1, 1], a_ub=[[-1, -1]], b_ub=[-2])
    assert res.objective == pytest.approx(2.0)


def test_bounded_maximization_as_min():
    # max 3x + 2y s.t. x <= 4, y <= 3, x + y <= 5  -> x=4, y=1 -> 14
    res = solve_lp(
        [-3, -2],
        a_ub=[[1, 0], [0, 1], [1, 1]],
        b_ub=[4, 3, 5],
    )
    assert -res.objective == pytest.approx(14.0)
    assert res.x[0] == pytest.approx(4.0)
    assert res.x[1] == pytest.approx(1.0)


def test_equality_constraints():
    # min x + 2y s.t. x + y == 3, x <= 1 -> x=1, y=2 -> 5
    res = solve_lp([1, 2], a_ub=[[1, 0]], b_ub=[1], a_eq=[[1, 1]], b_eq=[3])
    assert res.objective == pytest.approx(5.0)


def test_infeasible():
    # x <= 1 and x >= 2
    with pytest.raises(InfeasibleError):
        solve_lp([1], a_ub=[[1], [-1]], b_ub=[1, -2])


def test_unbounded():
    # min -x with no upper bound on x
    with pytest.raises(UnboundedError):
        solve_lp([-1], a_ub=[[-1]], b_ub=[0])


def test_degenerate_ok():
    # redundant constraints should not cycle
    res = solve_lp(
        [1, 1],
        a_ub=[[-1, 0], [0, -1], [-1, -1], [-1, -1]],
        b_ub=[0, 0, -1, -1],
    )
    assert res.objective == pytest.approx(1.0)


def test_no_constraints_zero_solution():
    res = solve_lp([1, 2])
    assert res.objective == 0.0


def test_path_balancing_lp_shape():
    # chain a->b->c: min (sb - sa - 1) + (sc - sb - 1), sa=0, gaps >= 1
    # variables: sb, sc ; min sb-... -> optimum gaps exactly 1
    # min (sb - 1) + (sc - sb - 1) = sc - 2 s.t. sb >= 1, sc - sb >= 1
    res = solve_lp([0, 1], a_ub=[[-1, 0], [1, -1]], b_ub=[-1, -1])
    assert res.x[1] == pytest.approx(2.0)
