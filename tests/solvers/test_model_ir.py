"""The unified solver-model IR: capability routing and backend parity."""

import math

import pytest

from repro.errors import InfeasibleError, SolverError
from repro.solvers import CpModel, MilpModel, SolverModel
from repro.solvers.cpsat import IR_FEATURES as CP_FEATURES
from repro.solvers.milp import IR_FEATURES as MILP_FEATURES


def small_ilp(model_cls):
    """min x + y  s.t.  x + 2y >= 3,  x - y <= 1,  0 <= x,y <= 10."""
    m = model_cls()
    x = m.add_var(0, 10, name="x")
    y = m.add_var(0, 10, name="y")
    # MilpModel spells it add_constraint, the IR add_linear; the IR
    # aliases add_constraint so one builder covers both
    m.add_constraint({x: 1, y: 2}, ">=", 3)
    m.add_constraint({x: 1, y: -1}, "<=", 1)
    m.minimize({x: 1, y: 1})
    return m, x, y


class TestRouting:
    def test_linear_model_routes_to_milp(self):
        m, _, _ = small_ilp(SolverModel)
        assert m.features_required() == frozenset()
        assert m.pick_backend() == "milp"
        assert m.solve().backend == "milp"

    def test_alldiff_routes_to_cp(self):
        m = SolverModel()
        vs = [m.add_var(0, 2, name=f"v{i}") for i in range(3)]
        m.add_all_different(vs)
        assert "all_different" in m.features_required()
        assert m.pick_backend() == "cp"
        sol = m.solve()
        assert sol.backend == "cp"
        assert sorted(sol.int_value(v) for v in vs) == [0, 1, 2]

    def test_not_equal_routes_to_cp(self):
        m = SolverModel()
        x = m.add_var(0, 1, name="x")
        m.add_linear({x: 1}, "!=", 0)
        assert m.pick_backend() == "cp"
        assert m.solve().int_value(x) == 1

    def test_continuous_routes_to_milp(self):
        m = SolverModel()
        x = m.add_var(0, 5, integer=False, name="x")
        m.add_linear({x: 2}, ">=", 3)
        m.minimize({x: 1})
        assert "continuous" in m.features_required()
        assert m.pick_backend() == "milp"
        assert m.solve().value(x) == pytest.approx(1.5)

    def test_unsupported_combination_raises(self):
        m = SolverModel()
        x = m.add_var(0, 5, integer=False, name="x")
        y = m.add_var(0, 5, name="y")
        m.add_all_different([x, y])  # alldiff (CP-only) + continuous (MILP-only)
        with pytest.raises(SolverError):
            m.pick_backend()

    def test_explicit_backend_capability_errors(self):
        m = SolverModel()
        vs = [m.add_var(0, 2) for _ in range(3)]
        m.add_all_different(vs)
        with pytest.raises(SolverError):
            m.solve(backend="milp")
        m2 = SolverModel()
        m2.add_var(0, math.inf, name="free")
        with pytest.raises(SolverError):
            m2.solve(backend="cp")
        with pytest.raises(SolverError):
            m2.solve(backend="quantum")

    def test_feature_sets_are_disjoint_capabilities(self):
        assert "all_different" in CP_FEATURES
        assert "all_different" not in MILP_FEATURES
        assert "continuous" in MILP_FEATURES
        assert "continuous" not in CP_FEATURES


class TestBackendParity:
    def test_ir_milp_equals_hand_encoded(self):
        ir, x, y = small_ilp(SolverModel)
        hand, hx, hy = small_ilp(MilpModel)
        ir_sol = ir.solve(backend="milp")
        hand_sol = hand.solve()
        assert ir_sol.objective == hand_sol.objective
        assert ir_sol.int_value(x) == hand_sol.int_value(hx)
        assert ir_sol.int_value(y) == hand_sol.int_value(hy)

    def test_ir_cp_equals_hand_encoded(self):
        ir = SolverModel()
        vs = [ir.add_var(0, 3, name=f"s{i}") for i in range(3)]
        ir.add_all_different(vs)
        ir.add_linear({vs[0]: 1}, ">=", 1)
        ir.minimize({v: 1 for v in vs})

        hand = CpModel()
        hs = [hand.new_int_var(0, 3, f"s{i}") for i in range(3)]
        hand.add_all_different(hs)
        hand.add_linear({hs[0]: 1}, ">=", 1)
        assignment, total = hand.minimize({v: 1 for v in hs})

        sol = ir.solve(backend="cp")
        assert sol.objective == float(total)
        assert [sol.int_value(v) for v in vs] == [
            assignment[v.index] for v in hs
        ]

    def test_maximize_on_both_backends(self):
        for backend in ("milp", "cp"):
            m = SolverModel()
            x = m.add_var(0, 7, name="x")
            m.add_linear({x: 2}, "<=", 9)
            m.maximize({x: 1})
            sol = m.solve(backend=backend)
            assert sol.int_value(x) == 4
            assert sol.objective == pytest.approx(4.0)

    def test_infeasible_raises_on_both_backends(self):
        for backend in ("milp", "cp"):
            m = SolverModel()
            x = m.add_var(0, 1, name="x")
            m.add_linear({x: 1}, ">=", 5)
            with pytest.raises(InfeasibleError):
                m.solve(backend=backend)

    def test_minus_inf_lower_bound_rejected_cleanly(self):
        # the x = lb + y shift needs a finite anchor; this used to poison
        # the constraint rows with NaN instead of raising
        m = SolverModel()
        x = m.add_var(-math.inf, 0, integer=False, name="x")
        m.add_linear({x: 1}, "<=", 0)
        m.minimize({x: 1})
        with pytest.raises(SolverError):
            m.solve(backend="milp")

    def test_cp_rejects_fractional_objective(self):
        m = SolverModel()
        a, b = m.add_var(0, 3), m.add_var(0, 3)
        m.add_all_different([a, b])
        m.minimize({a: 0.5, b: 1})
        with pytest.raises(SolverError):
            m.solve(backend="cp")

    def test_lp_bound_is_a_lower_bound(self):
        m, _, _ = small_ilp(SolverModel)
        assert m.lp_bound() <= m.solve(backend="milp").objective + 1e-9

    def test_lp_bound_ignores_alldiff(self):
        m = SolverModel()
        vs = [m.add_var(0, 2, name=f"v{i}") for i in range(3)]
        m.add_all_different(vs)
        m.minimize({v: 1 for v in vs})
        # relaxation drops AllDifferent: everything at 0
        assert m.lp_bound() == pytest.approx(0.0)
        assert m.solve(backend="cp").objective == 3.0


class TestFlowModels:
    """The §II-B / §II-C models built on the IR match the old encodings."""

    def test_phase_ilp_on_ir_matches_seed_encoding(self):
        """build_ilp_model + MILP backend == the hand-encoded seed ILP."""
        from repro.circuits import ripple_carry_adder
        from repro.core.phase_assignment import assign_stages_ilp
        from repro.sfq import map_to_sfq

        net = ripple_carry_adder(3)
        nl, _ = map_to_sfq(net, n_phases=2)
        assign_stages_ilp(nl)
        stages = [c.stage for c in nl.cells]
        # the seed's hand-encoded MilpModel, reproduced verbatim
        from repro.core.phase_assignment import build_ilp_model

        nl2, _ = map_to_sfq(net, n_phases=2)
        model, sigma, k_vars = build_ilp_model(nl2)
        hand = MilpModel()
        for v in model.vars:
            hand.add_var(v.lb, v.ub, integer=v.integer, name=v.name)
        for kind, (coeffs, sense, rhs) in model.constraints:
            assert kind == "linear"
            hand.add_constraint(dict(coeffs), sense, rhs)
        hand.minimize(dict(model.objective))
        sol = hand.solve(node_limit=50_000)
        for cell in nl2.cells:
            if cell.clocked:
                cell.stage = sol.int_value(sigma[cell.index].index)
        assert stages == [c.stage for c in nl2.cells]

    def test_t1_input_model_routes_to_cp(self):
        from repro.core.dff_insertion import build_t1_input_model

        model, slots, ks = build_t1_input_model(6, [1, 2, 3], 4)
        assert model.pick_backend() == "cp"
        sol = model.solve()
        chosen = [sol.int_value(s) for s in slots]
        assert len(set(chosen)) == 3  # eq. 5: pairwise distinct arrivals

    def test_plan_t1_inputs_cp_matches_closed_form(self):
        from repro.core.dff_insertion import plan_t1_inputs, plan_t1_inputs_cp

        for t1_stage, fanins, n in [
            (6, [1, 2, 3], 4),
            (4, [0, 0, 0], 4),
            (5, [1, 1, 4], 3),
        ]:
            exact = plan_t1_inputs(t1_stage, fanins, n)
            cp = plan_t1_inputs_cp(t1_stage, fanins, n)
            assert cp.total_dffs == exact.total_dffs
