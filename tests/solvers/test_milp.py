"""Tests for branch-and-bound MILP, incl. brute-force cross-checks."""

import itertools
import math
import random

import pytest

from repro.errors import InfeasibleError
from repro.solvers import MilpModel


def test_integer_rounding_matters():
    # LP optimum fractional; integer optimum differs
    # max x + y s.t. 2x + 3y <= 6, 3x + 2y <= 6  (LP opt at x=y=1.2)
    m = MilpModel()
    x = m.add_var(0, 10, name="x")
    y = m.add_var(0, 10, name="y")
    m.add_constraint({x: 2, y: 3}, "<=", 6)
    m.add_constraint({x: 3, y: 2}, "<=", 6)
    m.maximize({x: 1, y: 1})
    sol = m.solve()
    assert sol.objective == pytest.approx(2.0)


def test_knapsack():
    values = [10, 13, 7, 8]
    weights = [3, 4, 2, 3]
    cap = 6
    m = MilpModel()
    xs = [m.add_var(0, 1, name=f"x{i}") for i in range(4)]
    m.add_constraint({x: w for x, w in zip(xs, weights)}, "<=", cap)
    m.maximize({x: v for x, v in zip(xs, values)})
    sol = m.solve()
    # brute force
    best = max(
        sum(v for v, w, t in zip(values, weights, combo) if t)
        for combo in itertools.product((0, 1), repeat=4)
        if sum(w for w, t in zip(weights, combo) if t) <= cap
    )
    assert sol.objective == pytest.approx(best)


def test_equality_integer():
    m = MilpModel()
    x = m.add_var(0, 100)
    y = m.add_var(0, 100)
    m.add_constraint({x: 1, y: 1}, "==", 7)
    m.add_constraint({x: 1, y: -1}, ">=", 1)
    m.minimize({x: 1})
    sol = m.solve()
    assert sol.int_value(x) == 4
    assert sol.int_value(y) == 3


def test_infeasible():
    m = MilpModel()
    x = m.add_var(0, 1)
    m.add_constraint({x: 1}, ">=", 2)
    with pytest.raises(InfeasibleError):
        m.solve()


def test_continuous_mixed():
    m = MilpModel()
    x = m.add_var(0, 10, integer=True)
    y = m.add_var(0, 10, integer=False)
    m.add_constraint({x: 1, y: 1}, ">=", 2.5)
    m.minimize({x: 10, y: 1})
    sol = m.solve()
    assert sol.value(y) == pytest.approx(2.5)
    assert sol.int_value(x) == 0


def test_var_lower_bounds():
    m = MilpModel()
    x = m.add_var(3, 10)
    m.minimize({x: 1})
    sol = m.solve()
    assert sol.int_value(x) == 3


def test_negative_lower_bounds():
    m = MilpModel()
    x = m.add_var(-5, 5)
    m.minimize({x: 1})
    sol = m.solve()
    assert sol.int_value(x) == -5


@pytest.mark.parametrize("seed", range(10))
def test_random_small_ilp_vs_brute_force(seed):
    rng = random.Random(seed)
    n = rng.randint(2, 4)
    ub = 4
    m = MilpModel()
    xs = [m.add_var(0, ub) for _ in range(n)]
    cons = []
    for _ in range(rng.randint(1, 4)):
        coeffs = [rng.randint(-3, 3) for _ in range(n)]
        rhs = rng.randint(0, 10)
        sense = rng.choice(["<=", ">="])
        cons.append((coeffs, sense, rhs))
        m.add_constraint({x: c for x, c in zip(xs, coeffs)}, sense, rhs)
    obj = [rng.randint(-3, 3) for _ in range(n)]
    m.minimize({x: c for x, c in zip(xs, obj)})

    best = None
    for point in itertools.product(range(ub + 1), repeat=n):
        ok = all(
            (sum(c * p for c, p in zip(coeffs, point)) <= rhs)
            if sense == "<="
            else (sum(c * p for c, p in zip(coeffs, point)) >= rhs)
            for coeffs, sense, rhs in cons
        )
        if ok:
            val = sum(c * p for c, p in zip(obj, point))
            if best is None or val < best:
                best = val
    if best is None:
        with pytest.raises(InfeasibleError):
            m.solve()
    else:
        sol = m.solve()
        assert sol.objective == pytest.approx(best)


def test_phase_assignment_style_model():
    """Miniature of the paper's ILP: chain of 4 gates, n=2 phases.

    sigma(PI)=0; gaps >= 1; DFFs on edge = ceil(gap/n) - 1 modelled with
    k_e: n*k_e >= gap, k_e >= 1, minimise sum(k_e - 1).
    """
    n_phases = 2
    m = MilpModel()
    sigmas = [m.add_var(0, 20, name=f"s{i}") for i in range(4)]
    ks = []
    edges = [(None, 0), (0, 1), (1, 2), (2, 3)]
    for u, v in edges:
        k = m.add_var(1, 20, name=f"k{v}")
        ks.append(k)
        if u is None:
            # from PI at stage 0
            m.add_constraint({sigmas[v]: 1}, ">=", 1)
            m.add_constraint({k: n_phases, sigmas[v]: -1}, ">=", 0)
        else:
            m.add_constraint({sigmas[v]: 1, sigmas[u]: -1}, ">=", 1)
            m.add_constraint({k: n_phases, sigmas[v]: -1, sigmas[u]: 1}, ">=", 0)
    m.minimize({k: 1 for k in ks})
    sol = m.solve()
    # all gaps can be 1..2, so every k_e == 1 (zero DFFs)
    assert sol.objective == pytest.approx(4.0)
    stages = [sol.int_value(s) for s in sigmas]
    assert all(
        1 <= b - a <= 2 for a, b in zip([0] + stages[:-1], stages)
    )
