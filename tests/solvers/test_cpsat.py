"""Tests for the finite-domain CP solver."""

import itertools
import random

import pytest

from repro.errors import InfeasibleError, SolverError
from repro.solvers import CpModel


def test_simple_linear():
    m = CpModel()
    x = m.new_int_var(0, 10)
    y = m.new_int_var(0, 10)
    m.add_linear({x: 1, y: 1}, "==", 7)
    m.add_linear({x: 1, y: -1}, ">=", 3)
    sol = m.solve()
    assert sol[x.index] + sol[y.index] == 7
    assert sol[x.index] - sol[y.index] >= 3


def test_all_different_basic():
    m = CpModel()
    xs = [m.new_int_var(0, 2) for _ in range(3)]
    m.add_all_different(xs)
    sol = m.solve()
    assert sorted(sol[x.index] for x in xs) == [0, 1, 2]


def test_all_different_pigeonhole_infeasible():
    m = CpModel()
    xs = [m.new_int_var(0, 1) for _ in range(3)]
    m.add_all_different(xs)
    with pytest.raises(InfeasibleError):
        m.solve()


def test_not_equal():
    m = CpModel()
    x = m.new_int_var(0, 1)
    y = m.new_int_var(0, 1)
    m.add_linear({x: 1}, "!=", 0)
    m.add_linear({x: 1, y: -1}, "!=", 0)  # x != y
    sol = m.solve()
    assert sol[x.index] == 1
    assert sol[y.index] == 0


def test_minimize():
    m = CpModel()
    x = m.new_int_var(0, 10)
    y = m.new_int_var(0, 10)
    m.add_linear({x: 1, y: 1}, ">=", 6)
    assign, obj = m.minimize({x: 3, y: 1})
    assert obj == 6  # all on y
    assert assign[y.index] == 6


def test_empty_domain_rejected():
    m = CpModel()
    with pytest.raises(SolverError):
        m.new_int_var(5, 3)


def test_dff_insertion_style_model():
    """Miniature of eq. (5): three DFF stage variables before a T1 at
    stage 10 with n=4: each in [7, 9] after freshness, pairwise distinct."""
    m = CpModel()
    d = [m.new_int_var(7, 9, f"d{i}") for i in range(3)]
    m.add_all_different(d)
    # arrival order: d0 earliest
    m.add_linear({d[0]: 1, d[1]: -1}, "<=", -1)
    m.add_linear({d[1]: 1, d[2]: -1}, "<=", -1)
    sol = m.solve()
    assert [sol[x.index] for x in d] == [7, 8, 9]


def test_minimize_dff_count_model():
    """Choose slots for 3 inputs at stages (2, 2, 5) before sigma_T1 = 6,
    n = 4: inputs arriving directly collide at stage 2 -> one extra DFF."""
    m = CpModel()
    # slot variables: arrival stage of each input, within (2..5), (2..5), (5..5)
    s0 = m.new_int_var(2, 5)
    s1 = m.new_int_var(2, 5)
    s2 = m.new_int_var(5, 5)
    m.add_all_different([s0, s1, s2])
    # cost = number of moved inputs; moved_i = (s_i != base_i)
    # enumerate manually: minimize s0 + s1 shifted cost via linear proxy
    assign, obj = m.minimize({s0: 1, s1: 1})
    values = sorted([assign[s0.index], assign[s1.index]])
    assert values[0] == 2 and values[1] in (3, 4)


@pytest.mark.parametrize("seed", range(8))
def test_random_cp_vs_brute_force(seed):
    rng = random.Random(seed)
    n = rng.randint(2, 4)
    dom = 3
    m = CpModel()
    xs = [m.new_int_var(0, dom) for _ in range(n)]
    cons = []
    for _ in range(rng.randint(1, 3)):
        coeffs = [rng.randint(-2, 2) for _ in range(n)]
        rhs = rng.randint(-3, 6)
        op = rng.choice(["<=", ">=", "==", "!="])
        cons.append((coeffs, op, rhs))
        m.add_linear({x: c for x, c in zip(xs, coeffs)}, op, rhs)
    use_alldiff = rng.random() < 0.5
    if use_alldiff:
        m.add_all_different(xs)

    def feasible(point):
        for coeffs, op, rhs in cons:
            total = sum(c * p for c, p in zip(coeffs, point))
            if op == "<=" and not total <= rhs:
                return False
            if op == ">=" and not total >= rhs:
                return False
            if op == "==" and not total == rhs:
                return False
            if op == "!=" and not total != rhs:
                return False
        if use_alldiff and len(set(point)) != len(point):
            return False
        return True

    any_feasible = any(
        feasible(p) for p in itertools.product(range(dom + 1), repeat=n)
    )
    if any_feasible:
        sol = m.solve()
        point = tuple(sol[x.index] for x in xs)
        assert feasible(point)
    else:
        with pytest.raises(InfeasibleError):
            m.solve()


@pytest.mark.parametrize("seed", range(5))
def test_random_minimize_vs_brute_force(seed):
    rng = random.Random(100 + seed)
    n = 3
    dom = 3
    m = CpModel()
    xs = [m.new_int_var(0, dom) for _ in range(n)]
    coeffs = [rng.randint(-2, 2) for _ in range(n)]
    rhs = rng.randint(0, 5)
    m.add_linear({x: c for x, c in zip(xs, coeffs)}, ">=", rhs)
    obj = [rng.randint(-2, 2) for _ in range(n)]

    feas = [
        p
        for p in itertools.product(range(dom + 1), repeat=n)
        if sum(c * v for c, v in zip(coeffs, p)) >= rhs
    ]
    if not feas:
        with pytest.raises(InfeasibleError):
            m.minimize({x: c for x, c in zip(xs, obj)})
        return
    best = min(sum(c * v for c, v in zip(obj, p)) for p in feas)
    _, got = m.minimize({x: c for x, c in zip(xs, obj)})
    assert got == best
