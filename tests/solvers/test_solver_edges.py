"""Edge-case and failure-injection tests for the optimisation substrate."""

import pytest

from repro.errors import (
    InfeasibleError,
    SolverError,
    SolverLimitError,
    UnboundedError,
)
from repro.solvers import CpModel, MilpModel, solve_lp


class TestMilpEdges:
    def test_unbounded_lp_relaxation(self):
        m = MilpModel()
        x = m.add_var(0, float("inf"))
        m.minimize({x: -1})
        with pytest.raises(UnboundedError):
            m.solve()

    def test_node_limit_raises_without_incumbent(self):
        # infeasible-by-integrality problem with tiny node budget
        m = MilpModel()
        xs = [m.add_var(0, 1) for _ in range(12)]
        m.add_constraint({x: 2 for x in xs}, "==", 11)  # parity conflict
        m.minimize({x: 1 for x in xs})
        with pytest.raises((InfeasibleError, SolverLimitError)):
            m.solve(node_limit=1)

    def test_bad_sense_rejected(self):
        m = MilpModel()
        x = m.add_var(0, 1)
        with pytest.raises(SolverError):
            m.add_constraint({x: 1}, "<", 1)

    def test_bad_bounds_rejected(self):
        m = MilpModel()
        with pytest.raises(SolverError):
            m.add_var(5, 3)

    def test_duplicate_keys_merge(self):
        m = MilpModel()
        x = m.add_var(0, 10)
        m.add_constraint({x: 1, x.index: 1}, ">=", 6)  # 2x >= 6
        m.minimize({x: 1})
        assert m.solve().int_value(x) == 3

    def test_maximize(self):
        m = MilpModel()
        x = m.add_var(0, 7)
        m.add_constraint({x: 3}, "<=", 17)
        m.maximize({x: 1})
        sol = m.solve()
        assert sol.int_value(x) == 5
        assert sol.objective == pytest.approx(5)

    def test_empty_objective(self):
        m = MilpModel()
        x = m.add_var(2, 9)
        m.minimize({})
        sol = m.solve()
        assert 2 <= sol.int_value(x) <= 9


class TestCpEdges:
    def test_node_limit(self):
        m = CpModel()
        xs = [m.new_int_var(0, 30) for _ in range(8)]
        m.add_all_different(xs)
        m.add_linear({x: 1 for x in xs}, "==", 120)
        with pytest.raises((SolverLimitError, InfeasibleError)):
            m.solve(node_limit=2)

    def test_bad_operator(self):
        m = CpModel()
        x = m.new_int_var(0, 1)
        with pytest.raises(SolverError):
            m.add_linear({x: 1}, "<", 1)

    def test_negative_coefficients(self):
        m = CpModel()
        x = m.new_int_var(0, 10)
        y = m.new_int_var(0, 10)
        m.add_linear({x: -2, y: 1}, "==", 0)  # y == 2x
        m.add_linear({x: 1}, ">=", 3)
        sol = m.solve()
        assert sol[y.index] == 2 * sol[x.index]
        assert sol[x.index] >= 3

    def test_zero_coefficient_dropped(self):
        m = CpModel()
        x = m.new_int_var(0, 5)
        m.add_linear({x: 0}, "==", 0)  # vacuous
        sol = m.solve()
        assert 0 <= sol[x.index] <= 5

    def test_alldiff_large_enough_domain(self):
        m = CpModel()
        xs = [m.new_int_var(0, 9) for _ in range(10)]
        m.add_all_different(xs)
        sol = m.solve()
        assert sorted(sol[x.index] for x in xs) == list(range(10))

    def test_minimize_with_alldiff(self):
        m = CpModel()
        xs = [m.new_int_var(1, 10) for _ in range(3)]
        m.add_all_different(xs)
        _, obj = m.minimize({x: 1 for x in xs})
        assert obj == 1 + 2 + 3


class TestLpEdges:
    def test_zero_rows_zero_cost(self):
        res = solve_lp([0.0, 0.0])
        assert res.objective == 0.0

    def test_tight_equality_system(self):
        # x + y = 4, x - y = 2 -> unique point (3, 1)
        res = solve_lp(
            [1, 1],
            a_eq=[[1, 1], [1, -1]],
            b_eq=[4, 2],
        )
        assert res.x[0] == pytest.approx(3)
        assert res.x[1] == pytest.approx(1)

    def test_redundant_equalities_ok(self):
        res = solve_lp(
            [1],
            a_eq=[[1], [1]],
            b_eq=[2, 2],
        )
        assert res.x[0] == pytest.approx(2)
