"""End-to-end fuzzing: random DAGs through the full flow.

Every random network must survive decompose -> strash -> T1 detection ->
mapping -> phase assignment -> DFF insertion with:

* combinational equivalence against the original (T1 taps expanded);
* clean static timing;
* cycle-exact pulse-level streaming at full throughput.

This is the strongest single safety net in the suite: it exercises odd
fanin patterns, reconvergence, dangling logic, constants and multi-use
leaves that the structured benchmark circuits never produce.
"""

import random

import pytest

from repro.core import FlowConfig, run_flow
from repro.network import Gate, LogicNetwork, check_equivalence, simulate_words
from repro.sfq import PulseSimulator, check_timing


def random_network(
    seed: int,
    num_pis: int = 6,
    num_gates: int = 40,
    p_wide: float = 0.3,
) -> LogicNetwork:
    """A random DAG over the mappable gate alphabet."""
    rng = random.Random(seed)
    net = LogicNetwork(f"fuzz{seed}")
    nodes = [net.add_pi(f"x{i}") for i in range(num_pis)]
    binary = [Gate.AND, Gate.OR, Gate.XOR, Gate.NAND, Gate.NOR, Gate.XNOR]
    for _ in range(num_gates):
        roll = rng.random()
        if roll < 0.15:
            node = net.add_not(rng.choice(nodes))
        elif roll < 0.15 + p_wide:
            kind = rng.choice([Gate.AND, Gate.OR, Gate.XOR, Gate.MAJ3])
            fins = rng.sample(nodes, 3) if len(nodes) >= 3 else None
            if fins is None:
                continue
            node = net.add_gate(kind, fins)
        else:
            kind = rng.choice(binary)
            a, b = rng.choice(nodes), rng.choice(nodes)
            if a == b and kind in (Gate.XOR, Gate.XNOR):
                b = rng.choice(nodes)
            node = net.add_gate(kind, (a, b))
        nodes.append(node)
    # outputs: a few random nodes, guaranteed at least one deep node
    out_count = rng.randint(2, 5)
    for i, po in enumerate(rng.sample(nodes[num_pis:], out_count)):
        net.add_po(po, f"y{i}")
    net.add_po(nodes[-1], "deep")
    return net


@pytest.mark.parametrize("seed", range(12))
def test_fuzz_t1_flow_equivalence(seed):
    net = random_network(seed)
    res = run_flow(net, FlowConfig(n_phases=4, use_t1=True, verify="none"))
    assert check_timing(res.netlist).ok
    cec = check_equivalence(net, res.logic_network, complete=True)
    assert cec.equivalent, cec.counterexample


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("n", [1, 3, 4])
def test_fuzz_streaming_matches_logic(seed, n):
    net = random_network(100 + seed, num_gates=25)
    res = run_flow(
        net, FlowConfig(n_phases=n, use_t1=(n >= 3), verify="none")
    )
    rng = random.Random(seed)
    waves = [[rng.randint(0, 1) for _ in net.pis] for _ in range(10)]
    out = PulseSimulator(res.netlist).run(waves)
    for w, vec in enumerate(waves):
        expect = simulate_words(net, [vec])[0]
        assert out.po_values[w] == expect, (seed, n, w)


@pytest.mark.parametrize("seed", range(6))
def test_fuzz_shared_and_unshared_agree_functionally(seed):
    net = random_network(200 + seed, num_gates=20)
    rng = random.Random(seed)
    waves = [[rng.randint(0, 1) for _ in net.pis] for _ in range(6)]
    outs = []
    for share in (True, False):
        res = run_flow(
            net,
            FlowConfig(n_phases=4, use_t1=True, share_chains=share,
                       verify="none"),
        )
        outs.append(PulseSimulator(res.netlist).run(waves).po_values)
    assert outs[0] == outs[1]


@pytest.mark.parametrize("seed", range(6))
def test_fuzz_detection_only_equivalence(seed):
    """Wider networks, detection stressed with more gates."""
    from repro.core.t1_detection import detect_and_replace
    from repro.network.cleanup import strash

    net = random_network(300 + seed, num_pis=8, num_gates=80, p_wide=0.45)
    work, _ = strash(net)
    res = detect_and_replace(work)
    cec = check_equivalence(net, res.network, complete=True)
    assert cec.equivalent, (seed, cec.counterexample)
